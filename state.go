package vflmarket

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"log"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/vfl"
)

// MarketState is a handle on one durable state directory: the versioned
// snapshot store underneath, the process-wide valuation-cache registry over
// it, and the per-market estimator checkpoint books. Engines and Servers
// opened on the same MarketState share one registry (one oracle per
// dataset/seed/config — every VFL course trains at most once), and Flush
// spills everything to disk so the next process boots warm.
//
// WithStateDir resolves directories through a process-wide cache, so every
// component naming the same directory shares one MarketState.
// OpenMarketState always builds a fresh handle over the directory —
// deliberately bypassing the cache — which is how tests simulate a process
// restart without forking: a fresh handle starts cold in memory and warms
// itself from whatever the previous handle flushed.
type MarketState struct {
	dir string
	st  *store.Store
	reg *vfl.Registry

	mu    sync.Mutex
	books map[string]*ckptBook
}

// OpenMarketState opens (creating if needed) the state directory and
// returns a fresh handle over it: an empty in-memory registry that warms
// itself from the directory's snapshots as oracles and checkpoints are
// first referenced. Most callers want WithStateDir (shared handle) instead;
// open an explicit fresh handle to simulate a restart in-process.
func OpenMarketState(dir string) (*MarketState, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("vflmarket: open state dir: %w", err)
	}
	return &MarketState{
		dir:   st.Dir(),
		st:    st,
		reg:   vfl.NewRegistry(st),
		books: make(map[string]*ckptBook),
	}, nil
}

// stateCache shares one MarketState per absolute directory across the
// process, so a Server and the Engines registered into it (or several
// Servers) agree on one registry.
var stateCache = struct {
	sync.Mutex
	m map[string]*MarketState
}{m: make(map[string]*MarketState)}

// SharedMarketState resolves dir through the process-wide cache: the first
// call opens the directory, later calls return the same handle. It is what
// WithStateDir uses on both Engine and Server.
func SharedMarketState(dir string) (*MarketState, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("vflmarket: state dir: %w", err)
	}
	stateCache.Lock()
	defer stateCache.Unlock()
	if ms, ok := stateCache.m[abs]; ok {
		return ms, nil
	}
	ms, err := OpenMarketState(abs)
	if err != nil {
		return nil, err
	}
	stateCache.m[abs] = ms
	return ms, nil
}

// Dir returns the state directory.
func (m *MarketState) Dir() string { return m.dir }

// Registry returns the valuation-cache registry over this state: the oracle
// sharing and memo persistence layer.
func (m *MarketState) Registry() *vfl.Registry { return m.reg }

// Flush spills everything volatile to the snapshot store: every registered
// oracle's valuation memo and every market's dirty estimator checkpoints.
// The first error is returned after attempting everything.
func (m *MarketState) Flush() error {
	first := m.reg.Flush()
	m.mu.Lock()
	books := make([]*ckptBook, 0, len(m.books))
	for _, b := range m.books {
		books = append(books, b)
	}
	m.mu.Unlock()
	for _, b := range books {
		if err := b.flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// book returns the market's estimator checkpoint book, creating it on first
// use.
func (m *MarketState) book(market string) *ckptBook {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.books[market]
	if !ok {
		b = &ckptBook{
			st:     m.st,
			prefix: "estimators/" + marketSlug(market) + "/",
			cache:  make(map[string]*core.SellerCheckpoint),
			dirty:  make(map[string]bool),
		}
		m.books[market] = b
	}
	return b
}

// restoredCheckpoints counts the estimator checkpoints loaded from disk
// across every market book — the sessions a restarted server can resume
// without re-exploring.
func (m *MarketState) restoredCheckpoints() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, b := range m.books {
		n += b.restoredCount()
	}
	return n
}

// quarantineCorrupt moves a snapshot aside when its load error indicates
// damage (not mere absence or a future schema), logging the disposition —
// the boot-time breadcrumb an operator greps for after a crash.
func quarantineCorrupt(st *store.Store, name string, err error) {
	if !store.IsCorrupt(err) {
		return
	}
	if qerr := st.Quarantine(name); qerr != nil {
		log.Printf("vflmarket: snapshot %s corrupt (%v); quarantine failed: %v", name, err, qerr)
		return
	}
	log.Printf("vflmarket: quarantined corrupt snapshot %s: %v", name, err)
}

// marketSlug maps a market name to a filename-safe snapshot path segment.
// Clean names pass through (so the on-disk layout stays readable); anything
// else is digested.
func marketSlug(name string) string {
	clean := name != "" && name[0] != '.'
	for i := 0; clean && i < len(name); i++ {
		switch c := name[i]; {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			clean = false
		}
	}
	if clean && len(name) <= 64 {
		return name
	}
	sum := sha256.Sum256([]byte(name))
	return hex.EncodeToString(sum[:12])
}

// ckptSchemaVersion is the payload schema of a persisted seller checkpoint.
const ckptSchemaVersion = 1

// maxCheckpointClients caps the per-market checkpoint book: client
// identities are client-chosen input, so an unbounded book would let a
// hostile fleet grow server memory without limit. Past the cap, the book
// evicts an arbitrary flushed entry (a disk copy survives; only the hot
// cache is bounded).
const maxCheckpointClients = 1024

// ckptBook is one market's durable estimator-checkpoint registry: a
// write-back cache over the snapshot store, implementing
// wire.SellerCheckpoints. Saves land in memory (the serving hot path never
// waits on disk) and spill on flush; loads fall through to disk, which is
// how a restarted server resumes sessions it checkpointed in a previous
// life.
type ckptBook struct {
	st     *store.Store
	prefix string

	mu       sync.Mutex
	cache    map[string]*core.SellerCheckpoint
	dirty    map[string]bool
	restored int
}

func (b *ckptBook) Save(clientID string, ck *core.SellerCheckpoint) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.cache[clientID]; !ok && len(b.cache) >= maxCheckpointClients {
		for id := range b.cache {
			if !b.dirty[id] {
				delete(b.cache, id)
				break
			}
		}
		if len(b.cache) >= maxCheckpointClients {
			// Everything resident is dirty: drop the newcomer rather than
			// lose an unflushed checkpoint.
			return
		}
	}
	b.cache[clientID] = ck
	b.dirty[clientID] = true
}

func (b *ckptBook) Load(clientID string) (*core.SellerCheckpoint, bool) {
	b.mu.Lock()
	if ck, ok := b.cache[clientID]; ok {
		b.mu.Unlock()
		return ck, true
	}
	b.mu.Unlock()

	// Cold: fall through to the snapshot store. Any failure — missing,
	// corrupt, truncated, future-versioned — is a miss and the client is
	// told to start fresh; a damaged file is additionally quarantined
	// (renamed aside, logged) so it cannot shadow the fresh checkpoint the
	// restarted session is about to write.
	name := b.prefix + clientID
	payload, _, err := b.st.Load(name, ckptSchemaVersion)
	if err != nil {
		quarantineCorrupt(b.st, name, err)
		return nil, false
	}
	var ck core.SellerCheckpoint
	if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ck); derr != nil {
		// The frame verified but the payload did not decode: same
		// disposition as a torn frame.
		if qerr := b.st.Quarantine(name); qerr == nil {
			log.Printf("vflmarket: quarantined undecodable snapshot %s: %v", name, derr)
		}
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if prior, ok := b.cache[clientID]; ok { // raced load
		return prior, true
	}
	b.cache[clientID] = &ck
	b.restored++
	return &ck, true
}

// flush spills every dirty checkpoint; entries that fail stay dirty for the
// next attempt.
func (b *ckptBook) flush() error {
	b.mu.Lock()
	ids := make([]string, 0, len(b.dirty))
	cks := make([]*core.SellerCheckpoint, 0, len(b.dirty))
	for id := range b.dirty {
		ids = append(ids, id)
		cks = append(cks, b.cache[id])
	}
	b.mu.Unlock()

	var first error
	for i, ck := range cks {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
			if first == nil {
				first = fmt.Errorf("vflmarket: flush checkpoint %q: %w", ids[i], err)
			}
			continue
		}
		if err := b.st.Save(b.prefix+ids[i], ckptSchemaVersion, buf.Bytes()); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		b.mu.Lock()
		delete(b.dirty, ids[i])
		b.mu.Unlock()
	}
	return first
}

func (b *ckptBook) restoredCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.restored
}

// clientCount reports how many client identities the book holds in memory.
func (b *ckptBook) clientCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.cache)
}
