package vflmarket

// Chaos-hardening tests: the deterministic fault-injecting proxy
// (internal/chaos) sits between real clients and real servers while mixed
// workloads run through it. The headline soak proves the robustness
// contract end to end — under a seeded schedule of latency, throttling,
// partial writes, resets, truncations, and one-way blackholes, every
// session completes bit-identical to a fault-free run, with zero failed
// sessions on the servers. The rest of the file pins the individual
// defenses: the pool's circuit breaker, the server watchdog, and
// context-bounded stats probes against stalled peers.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/rng"
	"repro/internal/wire"
)

// chaosSeed is the soak's fault-schedule seed: fixed so CI replays the
// same byte-exact schedule every run, overridable with
// VFLMARKET_CHAOS_SEED to explore other schedules. A failure report
// includes the seed; rerunning with it reproduces the exact fault timing.
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	if env := os.Getenv("VFLMARKET_CHAOS_SEED"); env != "" {
		v, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("VFLMARKET_CHAOS_SEED=%q: %v", env, err)
		}
		return v
	}
	return 42
}

// chaosRetry keeps the soak quick: many attempts, short waits — the
// schedule a client wants when faults are injected at millisecond scale.
var chaosRetry = RetryPolicy{Attempts: 14, Base: 20 * time.Millisecond, Max: 250 * time.Millisecond}

// TestChaosSoakBitIdentical is the PR's acceptance scenario: two servers
// (clear and Paillier-settling) behind fault-injecting proxies running a
// seeded mix of retryable faults, ten concurrent sessions across both
// markets, both codecs, and all three regimes (perfect, imperfect with
// identified resume, secure). Every session must finish bit-identical to
// its fault-free golden, no session may be lost, and the servers must
// classify every severed carrier as choreography (dropped/watchdog), never
// as a failed session.
func TestChaosSoakBitIdentical(t *testing.T) {
	seed := chaosSeed(t)
	ctx := context.Background()

	engines := testEngines(t)
	// A state directory so identified imperfect sessions can resume across
	// injected severs — without it a resume request is a protocol error.
	ms, err := OpenMarketState(stateTestDir(t))
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, shutdown := startServer(t, engines, WithIOTimeout(2*time.Second), WithMarketState(ms))
	defer shutdown()
	proxy, err := chaos.NewProxy(addr, chaos.NewPlan(seed, 14))
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	secEngine, err := NewEngine("titanic", WithSynthetic(true), WithScale(0.25), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	srvSec, addrSec, shutdownSec := startServer(t, map[string]*Engine{"titanic": secEngine},
		WithIOTimeout(2*time.Second), WithSecureSettlement(128), WithEagerSecureKeys(), WithNoisePool(16))
	defer shutdownSec()
	proxySec, err := chaos.NewProxy(addrSec, chaos.NewPlan(seed+1, 6))
	if err != nil {
		t.Fatal(err)
	}
	defer proxySec.Close()

	// Goldens, computed fault-free before any chaos client dials. Each
	// worker runs several sequential sessions over its one pooled
	// connection so the stream offset climbs through the plan's onset
	// window ([2 KiB, 32 KiB)) — one short session would finish under the
	// first onset and prove nothing.
	const perfectRepeats, imperfectRepeats, secureRepeats = 3, 6, 8
	perfectJobs := []struct {
		market string
		codec  string
		seed   uint64
	}{
		{"titanic", CodecGob, 100},
		{"credit", CodecGob, 110},
		{"titanic", CodecJSON, 120},
		{"credit", CodecJSON, 130},
	}
	wantPerfect := make([][]*Result, len(perfectJobs))
	for i, job := range perfectJobs {
		wantPerfect[i] = make([]*Result, perfectRepeats)
		for r := 0; r < perfectRepeats; r++ {
			if wantPerfect[i][r], err = engines[job.market].Bargain(ctx, BargainOptions{Seed: job.seed + uint64(r)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	imperfectJobs := []struct {
		market string
		seed   uint64
	}{
		{"titanic", 200},
		{"credit", 210},
		{"titanic", 220},
		{"credit", 230},
	}
	wantImperfect := make([][]*ImperfectResult, len(imperfectJobs))
	for i, job := range imperfectJobs {
		wantImperfect[i] = make([]*ImperfectResult, imperfectRepeats)
		for r := 0; r < imperfectRepeats; r++ {
			cfg := engines[job.market].SessionImperfect()
			cfg.Seed = rng.DeriveSeed(job.seed, uint64(r))
			if wantImperfect[i][r], err = engines[job.market].BargainImperfectWith(ctx, cfg, imperfectTestParams); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The secure golden runs over the wire too — same server, same key,
	// just no proxy in the path — so proxied-vs-direct is an apples-to-
	// apples DeepEqual.
	secureSeeds := []uint64{300, 310}
	wantSecure := make([][]*Result, len(secureSeeds))
	goldenSec, err := Dial(ctx, addrSec,
		WithSession(secEngine.Session()), WithGains(secEngine.CatalogGains()))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range secureSeeds {
		wantSecure[i] = make([]*Result, secureRepeats)
		for r := 0; r < secureRepeats; r++ {
			if wantSecure[i][r], err = goldenSec.Bargain(ctx, BargainOptions{Seed: s + uint64(r)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	goldenSec.Close()

	var wg sync.WaitGroup
	errs := make(chan error, len(perfectJobs)+len(imperfectJobs)+len(secureSeeds))
	run := func(label string, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil {
				errs <- fmt.Errorf("%s: %w", label, err)
			}
		}()
	}

	for i, job := range perfectJobs {
		i, job := i, job
		run(fmt.Sprintf("perfect/%s/%s/seed=%d", job.market, job.codec, job.seed), func() error {
			client, err := Dial(ctx, proxy.Addr(),
				WithMarket(job.market),
				WithCodec(job.codec),
				WithSession(engines[job.market].Session()),
				WithGains(engines[job.market].CatalogGains()),
				WithSessionTimeout(1500*time.Millisecond),
				WithRetryPolicy(chaosRetry),
			)
			if err != nil {
				return fmt.Errorf("dial: %w", err)
			}
			defer client.Close()
			for r := 0; r < perfectRepeats; r++ {
				got, err := client.Bargain(ctx, BargainOptions{Seed: job.seed + uint64(r)})
				if err != nil {
					return fmt.Errorf("session %d: %w", r, err)
				}
				if !reflect.DeepEqual(got, wantPerfect[i][r]) {
					return fmt.Errorf("session %d diverges from fault-free run (chaos seed %d)", r, seed)
				}
			}
			return nil
		})
	}

	for i, job := range imperfectJobs {
		i, job := i, job
		run(fmt.Sprintf("imperfect/%s/seed=%d", job.market, job.seed), func() error {
			// One client, one pooled conn, a batch of identified sessions —
			// the batch runner suffixes the identity per spec, so a resume
			// after a fault can never collide with a sibling's checkpoint.
			client, err := Dial(ctx, proxy.Addr(),
				WithMarket(job.market),
				WithIdentity(fmt.Sprintf("soak-%d", i)),
				WithSession(engines[job.market].SessionImperfect()),
				WithGains(engines[job.market].CatalogGains()),
				WithImperfect(imperfectTestParams),
				WithSessionTimeout(1500*time.Millisecond),
				WithRetryPolicy(chaosRetry),
			)
			if err != nil {
				return fmt.Errorf("dial: %w", err)
			}
			defer client.Close()
			got, err := client.BargainImperfectBatch(ctx, make([]BatchSpec, imperfectRepeats),
				BatchOptions{Workers: 2, Seed: job.seed})
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(got, wantImperfect[i]) {
				return fmt.Errorf("batch diverges from fault-free run (chaos seed %d)", seed)
			}
			return nil
		})
	}

	for i, s := range secureSeeds {
		i, s := i, s
		run(fmt.Sprintf("secure/seed=%d", s), func() error {
			client, err := Dial(ctx, proxySec.Addr(),
				WithSession(secEngine.Session()),
				WithGains(secEngine.CatalogGains()),
				WithSessionTimeout(1500*time.Millisecond),
				WithRetryPolicy(chaosRetry),
			)
			if err != nil {
				return fmt.Errorf("dial: %w", err)
			}
			defer client.Close()
			for r := 0; r < secureRepeats; r++ {
				got, err := client.Bargain(ctx, BargainOptions{Seed: s + uint64(r)})
				if err != nil {
					return fmt.Errorf("session %d: %w", r, err)
				}
				if !reflect.DeepEqual(got, wantSecure[i][r]) {
					return fmt.Errorf("session %d diverges from fault-free run (chaos seed %d)", r, seed)
				}
			}
			return nil
		})
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("chaos seed %d: %v", seed, err)
	}

	t.Logf("chaos seed %d: clear proxy fired %d faults over %d conns; secure proxy fired %d over %d",
		seed, proxy.Triggered(), proxy.Accepted(), proxySec.Triggered(), proxySec.Accepted())
	if proxy.Triggered() == 0 {
		t.Errorf("chaos seed %d injected no faults on the clear path; the soak proved nothing — pick a seed whose onsets land inside the workload", seed)
	}
	for name, m := range map[string]ServerMetrics{"clear": srv.Metrics(), "secure": srvSec.Metrics()} {
		if m.Failed != 0 {
			t.Errorf("%s server classified %d sessions as failed under retryable faults, want 0 (metrics %+v)", name, m.Failed, m)
		}
	}
}

// TestChaosCircuitBreakerTripsAndRecovers drives the pool's per-address
// breaker through its whole lifecycle with scheduled connection resets:
// consecutive dial failures trip it open, an open breaker fast-fails with
// ErrCircuitOpen without touching the network, the cooldown admits a
// single half-open probe whose failure re-opens it, and a healthy probe
// closes it again — after which a session completes bit-identically.
func TestChaosCircuitBreakerTripsAndRecovers(t *testing.T) {
	engines := testEngines(t)
	_, addr, shutdown := startServer(t, engines)
	defer shutdown()

	// Accept-order conns 1-3 are reset before a single byte moves; conn 0
	// (the initial dial) and conn 4+ (the recovery) are clean.
	plan := &chaos.Plan{Faults: []chaos.Fault{
		{Kind: chaos.Reset, Conn: 1, Dir: chaos.ClientToServer, Onset: 0},
		{Kind: chaos.Reset, Conn: 2, Dir: chaos.ClientToServer, Onset: 0},
		{Kind: chaos.Reset, Conn: 3, Dir: chaos.ClientToServer, Onset: 0},
	}}
	proxy, err := chaos.NewProxy(addr, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	engine := engines["titanic"]
	const cooldown = 300 * time.Millisecond
	client, err := Dial(context.Background(), proxy.Addr(),
		WithMarket("titanic"),
		WithSession(engine.Session()),
		WithGains(engine.CatalogGains()),
		WithSessionTimeout(2*time.Second),
		WithRetryPolicy(RetryPolicy{Attempts: 1}),
		WithCircuitBreaker(BreakerPolicy{Threshold: 2, Cooldown: cooldown}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	want, err := engine.Bargain(context.Background(), BargainOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the warm conn; the next two dials land on scheduled resets and
	// trip the breaker (threshold 2).
	proxy.Sever()
	for i := 0; i < 2; i++ {
		if _, err := client.Bargain(context.Background(), BargainOptions{Seed: 7}); err == nil {
			t.Fatalf("bargain %d through a resetting proxy succeeded", i)
		} else if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("bargain %d fast-failed before the breaker had reason to trip: %v", i, err)
		}
	}

	// Open: fast-fail, no network.
	if _, err := client.Bargain(context.Background(), BargainOptions{Seed: 7}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("tripped breaker admitted a dial: %v", err)
	}
	ps := client.PoolStats()[proxy.Addr()]
	if ps.Breaker != BreakerOpen || ps.Trips != 1 || ps.FastFails < 1 {
		t.Fatalf("after trip: %+v, want open breaker with 1 trip and >=1 fast-fail", ps)
	}

	// Cooldown elapses; the half-open probe hits the last scheduled reset
	// and re-opens the breaker.
	time.Sleep(cooldown + 150*time.Millisecond)
	if _, err := client.Bargain(context.Background(), BargainOptions{Seed: 7}); err == nil {
		t.Fatal("half-open probe against a scheduled reset succeeded")
	}
	if ps := client.PoolStats()[proxy.Addr()]; ps.Breaker != BreakerOpen || ps.Trips != 2 {
		t.Fatalf("after failed probe: %+v, want re-opened breaker with 2 trips", ps)
	}

	// Second cooldown; the probe lands on a clean conn, the breaker closes,
	// and the session result is bit-identical to the in-process engine.
	time.Sleep(cooldown + 150*time.Millisecond)
	got, err := client.Bargain(context.Background(), BargainOptions{Seed: 7})
	if err != nil {
		t.Fatalf("bargain after recovery: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-recovery result diverges from in-process run")
	}
	ps = client.PoolStats()[proxy.Addr()]
	if ps.Breaker != BreakerClosed || ps.ConsecutiveFails != 0 {
		t.Fatalf("after recovery: %+v, want closed breaker with 0 consecutive fails", ps)
	}
	if ps.DialFailures != 3 {
		t.Fatalf("breaker counted %d dial failures, want exactly the 3 scheduled resets", ps.DialFailures)
	}
}

// TestChaosWatchdogSeversStalledSession defeats the per-read IO deadline
// the way a wedged-but-alive peer does — one whitespace byte at a time,
// each read succeeding, no envelope ever completing — and asserts the
// watchdog severs the session within its budget and counts it as a
// watchdog kill, not a dropped transport or a failed session.
func TestChaosWatchdogSeversStalledSession(t *testing.T) {
	engines := testEngines(t)
	srv, addr, shutdown := startServer(t, engines,
		WithIOTimeout(2*time.Second), WithWatchdogBudget(300*time.Millisecond))
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "VFLM/6 json\n")
	fmt.Fprintf(conn, `{"Kind":5,"Client":{"Version":6,"Market":"titanic"}}`+"\n")
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var hello wire.Envelope
	if err := json.NewDecoder(conn).Decode(&hello); err != nil {
		t.Fatalf("no hello: %v", err)
	}
	if hello.Kind != wire.KindHello {
		t.Fatalf("handshake answered %+v, want a Hello", hello)
	}

	// Trickle valid JSON whitespace: every server read succeeds inside its
	// 2s deadline, but no envelope ever arrives. Only the watchdog can end
	// this session. The write loop runs until the server's sever surfaces
	// as a write error (or a generous timeout trips the test).
	start := time.Now()
	for time.Since(start) < 5*time.Second {
		if _, err := conn.Write([]byte(" ")); err != nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	deadline := time.Now().Add(5 * time.Second)
	var m ServerMetrics
	for time.Now().Before(deadline) {
		if m = srv.Metrics(); m.Watchdog >= 1 {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if m.Watchdog != 1 {
		t.Fatalf("watchdog severed %d sessions, want 1 (metrics %+v)", m.Watchdog, m)
	}
	if m.Failed != 0 || m.Dropped != 0 {
		t.Fatalf("watchdog kill misclassified: %+v, want Failed=0 Dropped=0", m)
	}
}

// TestChaosStatsStalledPeer is the stats-probe regression: against a
// listener that accepts and then never speaks, both the wire-level stats
// fetch and a client Dial must return within the caller's context budget
// — not hang until the connection-level IO timeout.
func TestChaosStatsStalledPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var mu sync.Mutex
	var held []net.Conn
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range held {
			c.Close()
		}
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, c) // accepted, never answered
			mu.Unlock()
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := wire.FetchStats(ctx, conn, CodecGob, time.Minute); err == nil {
		t.Fatal("stats fetch from a stalled peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("stats fetch ignored its context budget: took %v", elapsed)
	}

	dialCtx, dialCancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer dialCancel()
	start = time.Now()
	if _, err := Dial(dialCtx, ln.Addr().String(), WithRetryPolicy(RetryPolicy{Attempts: 1})); err == nil {
		t.Fatal("dial of a stalled peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("dial ignored its context budget: took %v", elapsed)
	}
}
