package vflmarket

// Service-level tests of the protocol v3 hardening: a client whose
// imperfect hello demands more exploration or replay compute than the
// server caps is refused with an error envelope in place of the Hello —
// counted as a rejection, with no session state built — while compliant
// clients on the same server bargain normally.

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestServiceRefusesAbusiveImperfectHello dials a server with tight
// imperfect caps using an abusive exploration budget: the session must be
// refused with the cap named in the error, counted as rejected, and leave
// the server fully serviceable for a compliant client.
func TestServiceRefusesAbusiveImperfectHello(t *testing.T) {
	engines := testEngines(t)
	srv, addr, shutdown := startServer(t, engines, WithImperfectCaps(60, 8))
	defer shutdown()
	engine := engines["titanic"]

	abusive, err := Dial(context.Background(), addr,
		WithMarket("titanic"),
		WithCodec(CodecGob),
		WithSession(engine.SessionImperfect()),
		WithGains(engine.CatalogGains()),
		WithImperfect(ImperfectParams{ExplorationRounds: 10_000, PricePool: 100}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := abusive.BargainImperfect(context.Background(), BargainOptions{Seed: 5}); err == nil {
		t.Fatal("server served an abusive exploration budget")
	} else if !strings.Contains(err.Error(), "cap") {
		t.Fatalf("refusal does not name the cap: %v", err)
	}

	replayHog, err := Dial(context.Background(), addr,
		WithMarket("titanic"),
		WithCodec(CodecGob),
		WithSession(engine.SessionImperfect()),
		WithGains(engine.CatalogGains()),
		WithImperfect(ImperfectParams{ExplorationRounds: 30, ReplaySteps: 512, PricePool: 100}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replayHog.BargainImperfect(context.Background(), BargainOptions{Seed: 5}); err == nil {
		t.Fatal("server served an abusive replay budget")
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Rejected < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("metrics = %+v, want >= 2 rejected", srv.Metrics())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m := srv.Metrics(); m.Sessions != 0 {
		t.Fatalf("refused hellos opened %d sessions", m.Sessions)
	}

	// A compliant client on the same server still bargains end to end.
	polite, err := Dial(context.Background(), addr,
		WithMarket("titanic"),
		WithCodec(CodecGob),
		WithSession(engine.SessionImperfect()),
		WithGains(engine.CatalogGains()),
		WithImperfect(ImperfectParams{ExplorationRounds: 30, PricePool: 100}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := polite.BargainImperfect(context.Background(), BargainOptions{Seed: 5}); err != nil {
		t.Fatalf("compliant client refused: %v", err)
	}
}
