package vflmarket

// Unit tests of the client resilience primitives: the per-address circuit
// breaker's state machine and the seeded-jitter retry schedule. The
// service-level behavior (a breaker tripping under injected resets, the
// resume loop riding a failover) lives in chaos_service_test.go and
// cluster_failover_test.go; these tests pin the state transitions and the
// determinism contract in isolation.

import (
	"errors"
	mrand "math/rand"
	"testing"
	"time"
)

// TestBreakerStateMachine walks one breaker through its whole lifecycle:
// closed under sub-threshold failures, tripped open at the threshold,
// fast-failing through the cooldown, half-open admitting exactly one
// probe, re-opening on probe failure, and closing on probe success.
func TestBreakerStateMachine(t *testing.T) {
	const cooldown = 50 * time.Millisecond
	b := newBreaker(BreakerPolicy{Threshold: 3, Cooldown: cooldown})

	if b.state != BreakerClosed {
		t.Fatalf("fresh breaker state %q, want closed", b.state)
	}
	// Sub-threshold failures keep it closed; a success resets the count.
	for i := 0; i < 2; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("closed breaker refused dial %d: %v", i, err)
		}
		b.failure()
	}
	b.success()
	if b.state != BreakerClosed || b.fails != 0 {
		t.Fatalf("after success: state %q fails %d, want closed/0", b.state, b.fails)
	}

	// Threshold consecutive failures trip it open.
	for i := 0; i < 3; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("dial %d refused before threshold: %v", i, err)
		}
		b.failure()
	}
	if b.state != BreakerOpen || b.trips != 1 {
		t.Fatalf("at threshold: state %q trips %d, want open/1", b.state, b.trips)
	}
	// Open: fast-fail without a network touch.
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker admitted a dial: %v", err)
	}
	if b.fastFails != 1 {
		t.Fatalf("fastFails = %d, want 1", b.fastFails)
	}

	// Cooldown elapses: exactly one probe is admitted; a second concurrent
	// dial still fast-fails.
	time.Sleep(cooldown + 10*time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open refused the probe: %v", err)
	}
	if b.state != BreakerHalfOpen {
		t.Fatalf("state after cooldown allow: %q, want half-open", b.state)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("half-open admitted a second concurrent dial: %v", err)
	}
	// The probe fails: back to open for another cooldown.
	b.failure()
	if b.state != BreakerOpen || b.trips != 2 {
		t.Fatalf("after failed probe: state %q trips %d, want open/2", b.state, b.trips)
	}

	// Next probe succeeds: closed, counters reset.
	time.Sleep(cooldown + 10*time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	b.success()
	if b.state != BreakerClosed || b.fails != 0 {
		t.Fatalf("after probe success: state %q fails %d, want closed/0", b.state, b.fails)
	}
	if err := b.allow(); err != nil {
		t.Fatalf("recovered breaker refused a dial: %v", err)
	}
}

// TestBreakerProbeRelease: a probe slot claimed by a dial that ends with
// no verdict on the address (cancellation, a redirect) must be returned,
// or the breaker would deadlock half-open forever.
func TestBreakerProbeRelease(t *testing.T) {
	b := newBreaker(BreakerPolicy{Threshold: 1, Cooldown: 10 * time.Millisecond})
	b.failure() // trips at threshold 1
	time.Sleep(15 * time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatalf("probe refused: %v", err)
	}
	b.releaseProbe() // dial ended without an outcome
	if err := b.allow(); err != nil {
		t.Fatalf("released probe slot not reusable: %v", err)
	}
}

// TestBreakerDisabled: a disabled breaker admits every dial no matter how
// many consecutive failures it has seen, but still keeps its counters.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerPolicy{Threshold: 1, Disabled: true})
	for i := 0; i < 10; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("disabled breaker refused dial %d: %v", i, err)
		}
		b.failure()
	}
	if b.state != BreakerClosed || b.trips != 0 {
		t.Fatalf("disabled breaker state %q trips %d, want closed/0", b.state, b.trips)
	}
	if b.dialFails != 10 {
		t.Fatalf("disabled breaker counted %d failures, want 10", b.dialFails)
	}
}

// TestRetryPolicySeededJitter is the determinism satellite: two policies
// sharing a seed produce the identical wait schedule, jitter included —
// so a chaos run's retry timing is replayable — while every jittered wait
// stays inside its ±Jitter envelope around the capped-exponential base.
func TestRetryPolicySeededJitter(t *testing.T) {
	waits := func(seed int64) []time.Duration {
		p := RetryPolicy{
			Base: 100 * time.Millisecond, Max: 800 * time.Millisecond,
			Jitter: 0.2, Rand: mrand.New(mrand.NewSource(seed)),
		}.withDefaults()
		out := make([]time.Duration, 8)
		for k := 1; k <= 8; k++ {
			out[k-1] = p.wait(k)
		}
		return out
	}

	a, b := waits(7), waits(7)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("wait %d: %v vs %v — same seed, different schedule", k+1, a[k], b[k])
		}
	}

	// The jitter envelope: wait k centers on min(Base·2^(k−1), Max).
	for k, w := range a {
		center := 100 * time.Millisecond << k
		if center > 800*time.Millisecond {
			center = 800 * time.Millisecond
		}
		lo := time.Duration(float64(center) * 0.8)
		hi := time.Duration(float64(center) * 1.2)
		if w < lo || w > hi {
			t.Fatalf("wait %d = %v outside [%v, %v]", k+1, w, lo, hi)
		}
	}

	// A different seed diverges somewhere in the schedule.
	c := waits(8)
	same := true
	for k := range a {
		same = same && a[k] == c[k]
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical jitter schedules")
	}
}
