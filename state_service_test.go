package vflmarket

// End-to-end tests of the durable market state subsystem through the
// public API: crash-restart session resume (the PR's acceptance scenario
// — kill the server mid-market, restart it on the same state directory,
// and the reconnecting identified buyer continues bit-identically),
// warm-store valuation (a restarted engine prices its catalog from the
// persisted memo with zero new VFL trainings), admission control under a
// saturated pool, and cold boot over corrupt snapshots.
//
// Set VFLMARKET_STATE_DIR to pin the state directories to a shared
// location across runs: CI runs this file twice against one directory, so
// the second pass exercises every path warm. Every assertion here holds
// on both a cold and a pre-populated directory.

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// stateTestDir resolves this test's durable state directory: a per-test
// subdirectory of VFLMARKET_STATE_DIR when set (shared across runs — the
// CI cold/warm discipline), a throwaway TempDir otherwise.
func stateTestDir(t *testing.T) string {
	t.Helper()
	if base := os.Getenv("VFLMARKET_STATE_DIR"); base != "" {
		dir := filepath.Join(base, strings.ReplaceAll(t.Name(), "/", "_"))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// captureListener records every accepted connection so a test can sever
// them all at once — the "kill -9 the server" stand-in that leaves
// sessions dead mid-flight instead of draining them.
type captureListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *captureListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.conns = append(l.conns, c)
	l.mu.Unlock()
	return c, nil
}

func (l *captureListener) closeAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
}

// TestServiceStateCrashRestartResumesBitIdentical is the acceptance
// scenario: an identified imperfect buyer bargains against a state-bound
// server; mid-market the server is killed (every live connection severed)
// and a new server process — simulated by a fresh MarketState over the
// same directory — comes back on the same address. The client's
// auto-resume redials, the restarted server restores the buyer's
// estimator checkpoint from disk, and the finished session is
// bit-identical — trace, outcome, both MSE learning curves — to an
// uninterrupted in-process run with the same seed.
func TestServiceStateCrashRestartResumesBitIdentical(t *testing.T) {
	dir := stateTestDir(t)
	engine, err := NewEngine("titanic", WithSynthetic(true), WithScale(0.25), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	const seed = 83
	params := imperfectTestParams
	cfg := engine.SessionImperfect()
	cfg.Seed = seed
	want, err := engine.BargainImperfectWith(context.Background(), cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rounds) < 4 {
		t.Fatalf("reference session too short to cut: %d rounds", len(want.Rounds))
	}
	cut := want.Rounds[len(want.Rounds)/2].Round

	ms1, err := OpenMarketState(dir)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	cl := &captureListener{Listener: ln}
	srv1 := NewServer(WithMarketState(ms1))
	if err := srv1.Register("titanic", engine); err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	done1 := make(chan error, 1)
	go func() { done1 <- srv1.Serve(ctx1, cl) }()
	defer cancel1()

	// The kill fires from the client's round observer the first time the
	// session reaches the cut round: sever every server-side connection,
	// wait out the old server's drain-and-flush, then bring a fresh server
	// — fresh MarketState over the same directory, same engine config,
	// same address — back up before the client's retry budget runs out.
	type restartResult struct {
		srv      *Server
		shutdown func()
		err      error
	}
	restarted := make(chan restartResult, 1)
	var once sync.Once
	kill := func() {
		once.Do(func() {
			go func() {
				cancel1()
				cl.closeAll()
				<-done1
				res := restartResult{}
				defer func() { restarted <- res }()
				ms2, err := OpenMarketState(dir)
				if err != nil {
					res.err = err
					return
				}
				srv2 := NewServer(WithMarketState(ms2))
				if err := srv2.Register("titanic", engine); err != nil {
					res.err = err
					return
				}
				ln2, err := net.Listen("tcp", addr)
				if err != nil {
					res.err = err
					return
				}
				ctx2, cancel2 := context.WithCancel(context.Background())
				done2 := make(chan error, 1)
				go func() { done2 <- srv2.Serve(ctx2, ln2) }()
				res.srv = srv2
				res.shutdown = func() {
					cancel2()
					select {
					case <-done2:
					case <-time.After(10 * time.Second):
						t.Error("restarted server did not shut down")
					}
				}
			}()
		})
	}

	client, err := Dial(context.Background(), addr,
		WithIdentity("buyer-1"),
		WithSession(engine.SessionImperfect()),
		WithGains(engine.CatalogGains()),
		WithImperfect(params),
	)
	if err != nil {
		t.Fatal(err)
	}
	obs := ObserverFuncs{Round: func(rec RoundRecord) {
		if rec.Round == cut {
			kill()
		}
	}}
	got, err := client.BargainImperfect(context.Background(),
		BargainOptions{Seed: seed, Observers: []RoundObserver{obs}})
	if err != nil {
		t.Fatalf("resumed session failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed session diverges from uninterrupted run:\nresumed: %+v\nwant:    %+v", got, want)
	}

	res := <-restarted
	if res.err != nil {
		t.Fatalf("restart: %v", res.err)
	}
	defer res.shutdown()
	mm := res.srv.MarketMetrics()["titanic"]
	if mm.ResumedSessions < 1 {
		t.Fatalf("restarted server granted %d resumes, want >= 1", mm.ResumedSessions)
	}
	if mm.CheckpointedClients < 1 {
		t.Fatalf("restarted server holds %d checkpointed clients, want >= 1", mm.CheckpointedClients)
	}
	if res.srv.State().restoredCheckpoints() < 1 {
		t.Fatal("restarted server resumed without loading a checkpoint from disk")
	}
}

// TestServiceStateWarmOracleZeroTrainings proves the valuation-cache leg
// of the acceptance criteria: an engine bound to a state directory that
// already holds its oracle's memo prices its entire catalog — the first
// post-restart valuations — from the preloaded memo, with zero new VFL
// trainings, and bundle for bundle identically to the cold run.
func TestServiceStateWarmOracleZeroTrainings(t *testing.T) {
	dir := stateTestDir(t)
	build := func(ms *MarketState) *Engine {
		t.Helper()
		e, err := NewEngineFromConfig(Config{Dataset: "titanic", Scale: 0.2, Seed: 7, State: ms})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ms1, err := OpenMarketState(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := build(ms1)
	m1 := e1.OracleMetrics()
	if m1.CachedGains == 0 {
		t.Fatal("real-gain engine built with an empty valuation memo")
	}
	if m1.Trainings == 0 && m1.Restored == 0 {
		t.Fatal("engine neither trained nor restored — where did the gains come from?")
	}
	if err := e1.FlushState(); err != nil {
		t.Fatal(err)
	}

	// A fresh MarketState over the same directory is the restarted process.
	ms2, err := OpenMarketState(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := build(ms2)
	m2 := e2.OracleMetrics()
	if m2.Trainings != 0 {
		t.Fatalf("warm engine trained %d VFL courses, want 0 (restored %d of %d memoized gains)",
			m2.Trainings, m2.Restored, m1.CachedGains)
	}
	if m2.Restored == 0 {
		t.Fatal("warm engine restored nothing from the store")
	}
	c1, c2 := e1.Catalog(), e2.Catalog()
	if c1.Len() != c2.Len() {
		t.Fatalf("catalog sizes diverge: %d vs %d", c1.Len(), c2.Len())
	}
	for id := 0; id < c1.Len(); id++ {
		if c1.Gain(id) != c2.Gain(id) {
			t.Fatalf("bundle %d priced differently warm: %v vs %v", id, c1.Gain(id), c2.Gain(id))
		}
	}

	// A second engine on the same handle shares the oracle outright — the
	// registry's key covers dataset, seed, and config — so it also builds
	// with zero trainings.
	e3 := build(ms2)
	if m3 := e3.OracleMetrics(); m3.Trainings != 0 {
		t.Fatalf("registry-shared engine trained %d courses, want 0", m3.Trainings)
	}
}

// TestServiceStateBusyAdmission pins a one-worker, zero-backlog server
// with a half-open session and checks the next connection is refused with
// the typed busy envelope — surfaced as ErrServerBusy, counted in
// ServerMetrics.Busy, and distinct from a protocol rejection.
func TestServiceStateBusyAdmission(t *testing.T) {
	engines := testEngines(t)
	srv, addr, shutdown := startServer(t, engines, WithWorkers(1), WithBacklog(0))
	defer shutdown()

	// Complete a handshake and then go silent: the lone worker is now
	// parked in the session loop waiting for a quote that never comes.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, _, err := wire.ClientHandshake(conn, wire.CodecGob, wire.ClientHello{}); err != nil {
		t.Fatal(err)
	}

	_, err = Dial(context.Background(), addr)
	if err == nil {
		t.Fatal("dial against a saturated pool succeeded, want busy refusal")
	}
	if !errors.Is(err, ErrServerBusy) {
		t.Fatalf("saturated dial failed with %v, want ErrServerBusy", err)
	}
	if errors.Is(err, ErrRejected) {
		t.Fatalf("busy refusal should not read as a protocol rejection: %v", err)
	}
	if m := srv.Metrics(); m.Busy < 1 {
		t.Fatalf("ServerMetrics.Busy = %d, want >= 1", m.Busy)
	}
}

// TestServiceStateCorruptSnapshotsBootCold plants garbage where the store
// keeps estimator checkpoints, Paillier keys, and oracle memos, then
// boots over it: every corrupt snapshot is quietly a miss — the key
// regenerates, the checkpoint book reports no resumable state, and a
// fresh session over the directory runs bit-identical to in-process.
func TestServiceStateCorruptSnapshotsBootCold(t *testing.T) {
	dir := stateTestDir(t)
	for _, name := range []string{
		"estimators/titanic/buyer-1.snap",
		"keys/titanic.snap",
		"oracle/0000000000000000000000000000.snap",
	} {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte("definitely not a snapshot"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := OpenMarketState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ms.book("titanic").Load("buyer-1"); ok {
		t.Fatal("corrupt checkpoint loaded as valid")
	}

	engine, err := NewEngine("titanic", WithSynthetic(true), WithScale(0.25), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}

	// A secure server over the corrupt key record: the load is refused,
	// a fresh key generates, and a settled session works end to end.
	srvSec := NewServer(WithMarketState(ms), WithSecureSettlement(128), WithEagerSecureKeys())
	if err := srvSec.Register("titanic", engine); err != nil {
		t.Fatal(err)
	}
	lnSec, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctxSec, cancelSec := context.WithCancel(context.Background())
	doneSec := make(chan error, 1)
	go func() { doneSec <- srvSec.Serve(ctxSec, lnSec) }()
	defer func() { cancelSec(); <-doneSec }()
	clientSec, err := Dial(context.Background(), lnSec.Addr().String(),
		WithSession(engine.Session()), WithGains(engine.CatalogGains()))
	if err != nil {
		t.Fatal(err)
	}
	defer clientSec.Close()
	if !clientSec.Secure() {
		t.Fatal("server over a corrupt key record did not come up secure")
	}
	if _, err := clientSec.Bargain(context.Background(), BargainOptions{Seed: 101}); err != nil {
		t.Fatalf("secure session after cold key boot: %v", err)
	}

	// A clear server over the corrupt checkpoint: the identified buyer
	// starts fresh — no resume, no error — and plays bit-identically to
	// the in-process run.
	srv := NewServer(WithMarketState(ms))
	if err := srv.Register("titanic", engine); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	defer func() { cancel(); <-done }()
	client, err := Dial(context.Background(), ln.Addr().String(),
		WithIdentity("buyer-1"),
		WithSession(engine.SessionImperfect()),
		WithGains(engine.CatalogGains()),
		WithImperfect(imperfectTestParams),
	)
	if err != nil {
		t.Fatal(err)
	}
	const seed = 29
	got, err := client.BargainImperfect(context.Background(), BargainOptions{Seed: seed})
	if err != nil {
		t.Fatalf("fresh session over corrupt state: %v", err)
	}
	cfg := engine.SessionImperfect()
	cfg.Seed = seed
	want, err := engine.BargainImperfectWith(context.Background(), cfg, imperfectTestParams)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cold-boot session diverges from in-process run")
	}
	if mm := srv.MarketMetrics()["titanic"]; mm.ResumedSessions != 0 {
		t.Fatalf("cold boot granted %d resumes, want 0", mm.ResumedSessions)
	}
}
