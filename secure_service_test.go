package vflmarket

// End-to-end tests of the pipelined secure regime: quantized-exact payment
// parity over the wire under both codecs (with and without the client's
// randomizer pool), the public batched secure settlement path, and the
// oracle flight metrics surfaced per market.

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/secure"
)

// quantize is the fixed-point resolution the secure regime settles at:
// Open(Seal(p)) = round(p·GainScale)/GainScale, exactly.
func quantize(p float64) float64 {
	return math.Round(p*secure.GainScale) / secure.GainScale
}

// TestSecureSettlementQuantizedParityOverWire is the wire golden: for both
// codecs, and for both the pooled and the inline client encryption paths,
// the payment the server decrypts must equal the client's cleartext
// payment quantized to the fixed-point grid — exactly, which pins the
// pooled-encrypt and CRT-decrypt rebuild to the pre-refactor settlement
// values bit for bit.
func TestSecureSettlementQuantizedParityOverWire(t *testing.T) {
	engines := testEngines(t)
	events := make(chan SessionEvent, 16)
	_, addr, shutdown := startServer(t, engines,
		WithSecureSettlement(128),
		WithEagerSecureKeys(),
		WithNoisePool(16),
		WithSessionHook(func(ev SessionEvent) {
			if ev.Summary != nil {
				events <- ev
			}
		}),
	)
	defer shutdown()

	engine := engines["titanic"]
	want, err := engine.Bargain(context.Background(), BargainOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if want.Outcome != Success {
		t.Fatalf("in-process outcome = %v", want.Outcome)
	}
	wantPay := quantize(want.Final.Payment)

	for _, tc := range []struct {
		name  string
		codec string
		pool  int // WithClientNoisePool argument
	}{
		{"gob-pooled", CodecGob, 0},
		{"gob-inline", CodecGob, -1},
		{"json-pooled", CodecJSON, 0},
		{"json-inline", CodecJSON, -1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			client, err := Dial(context.Background(), addr,
				WithCodec(tc.codec),
				WithClientNoisePool(tc.pool),
				WithSession(engine.Session()),
				WithGains(engine.CatalogGains()),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			res, err := client.Bargain(context.Background(), BargainOptions{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			// The clear-side trace is bit-identical to the in-process run;
			// the gain never crossed the wire.
			if res.Final.Payment != want.Final.Payment || res.Final.BundleID != want.Final.BundleID {
				t.Fatalf("client trace diverged: %+v vs %+v", res.Final, want.Final)
			}
			var ev SessionEvent
			select {
			case ev = <-events:
			case <-time.After(5 * time.Second):
				t.Fatal("no session event")
			}
			if !ev.Summary.Closed {
				t.Fatal("server did not record the close")
			}
			if ev.Summary.Payment != wantPay {
				t.Fatalf("decrypted payment %v, want quantized %v (clear %v)",
					ev.Summary.Payment, wantPay, want.Final.Payment)
			}
		})
	}
}

// TestBargainBatchSecureMatchesClear runs the public batched secure path:
// identical traces to BargainBatch, payments quantized-exact, and the
// settlement's randomizer pool actually serving draws.
func TestBargainBatchSecureMatchesClear(t *testing.T) {
	engine, err := NewEngine("titanic", WithSynthetic(true), WithScale(0.25), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSettlement(128, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Prime(context.Background()); err != nil {
		t.Fatal(err)
	}

	specs := make([]BatchSpec, 16)
	opts := BatchOptions{Workers: 4, Seed: 3}
	clear, err := engine.BargainBatch(context.Background(), specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := engine.BargainBatchSecure(context.Background(), specs, opts, st)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		w, g := clear[i], sec[i]
		if g.Outcome != w.Outcome || g.Final.BundleID != w.Final.BundleID || len(g.Rounds) != len(w.Rounds) {
			t.Fatalf("spec %d diverged: %v/%d/%d vs %v/%d/%d", i,
				w.Outcome, w.Final.BundleID, len(w.Rounds), g.Outcome, g.Final.BundleID, len(g.Rounds))
		}
		for r := range w.Rounds {
			if g.Rounds[r].Payment != quantize(w.Rounds[r].Payment) {
				t.Fatalf("spec %d round %d payment %v, want quantized %v",
					i, r, g.Rounds[r].Payment, quantize(w.Rounds[r].Payment))
			}
		}
	}
	if ns := st.NoiseStats(); ns.Pooled == 0 {
		t.Fatalf("primed settlement pool served no draws: %+v", ns)
	}
	if _, err := engine.BargainBatchSecure(context.Background(), specs, opts, nil); err == nil {
		t.Fatal("nil settlement accepted")
	}
}

// TestMarketMetricsSurfaceOracleFlightStats registers a real-gain engine
// and checks the singleflight counters flow through Server.MarketMetrics.
func TestMarketMetricsSurfaceOracleFlightStats(t *testing.T) {
	engine, err := NewEngine("titanic", WithModel("mlp"), WithScale(0.25), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	om := engine.OracleMetrics()
	if om.Trainings == 0 || om.CachedGains == 0 {
		t.Fatalf("real-gain engine reports no oracle load: %+v", om)
	}
	// Catalog construction warms every bundle and then prices it through
	// the oracle again, so the memo must have served hits.
	if om.Hits == 0 {
		t.Fatalf("warmed catalog construction produced no memo hits: %+v", om)
	}

	srv := NewServer()
	if err := srv.Register("titanic", engine); err != nil {
		t.Fatal(err)
	}
	mm := srv.MarketMetrics()["titanic"]
	if mm.OracleTrainings != om.Trainings || mm.OracleCachedGains != om.CachedGains ||
		mm.OracleHits != om.Hits || mm.OracleCoalesced != om.Coalesced {
		t.Fatalf("MarketMetrics %+v does not mirror OracleMetrics %+v", mm, om)
	}
}
