package vflmarket

// End-to-end tests of the public market service: one multi-market Server
// process, concurrent clients over both codecs, cancellation, malformed
// peers, and the bit-identical-to-in-process contract. All of it runs
// under -race in CI.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// testEngines builds the two synthetic market engines every service test
// shares (small scale keeps construction fast).
func testEngines(t testing.TB) map[string]*Engine {
	t.Helper()
	engines := map[string]*Engine{}
	for _, name := range []string{"titanic", "credit"} {
		e, err := NewEngine(name, WithSynthetic(true), WithScale(0.25), WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		engines[name] = e
	}
	return engines
}

// startServer serves the engines on a loopback listener and returns the
// address plus a shutdown function that stops the server and waits for
// Serve to return.
func startServer(t testing.TB, engines map[string]*Engine, opts ...ServerOption) (*Server, string, func()) {
	t.Helper()
	srv := NewServer(opts...)
	for _, name := range []string{"titanic", "credit"} {
		if e, ok := engines[name]; ok {
			if err := srv.Register(name, e); err != nil {
				t.Fatal(err)
			}
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	shutdown := func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server did not shut down")
		}
	}
	return srv, ln.Addr().String(), shutdown
}

// TestServiceMultiMarketConcurrentClients is the acceptance scenario: one
// server, two named markets, eight concurrent clients split across markets
// and codecs, every result bit-identical to the in-process engine run with
// the same seed.
func TestServiceMultiMarketConcurrentClients(t *testing.T) {
	engines := testEngines(t)
	srv, addr, shutdown := startServer(t, engines)
	defer shutdown()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		market := "titanic"
		if i%2 == 1 {
			market = "credit"
		}
		codec := CodecGob
		if i%4 >= 2 {
			codec = CodecJSON
		}
		seed := uint64(100 + i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			engine := engines[market]
			client, err := Dial(context.Background(), addr,
				WithMarket(market),
				WithCodec(codec),
				WithSession(engine.Session()),
				WithGains(engine.CatalogGains()),
			)
			if err != nil {
				errs <- err
				return
			}
			got, err := client.Bargain(context.Background(), BargainOptions{Seed: seed})
			if err != nil {
				errs <- fmt.Errorf("%s/%s: %w", market, codec, err)
				return
			}
			want, err := engine.Bargain(context.Background(), BargainOptions{Seed: seed})
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(got, want) {
				errs <- fmt.Errorf("%s/%s seed %d: networked result diverges from in-process:\nwire:   %+v\nengine: %+v",
					market, codec, seed, got, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	m := srv.Metrics()
	if m.Sessions != clients || m.Failed != 0 {
		t.Fatalf("metrics = %+v, want %d clean sessions", m, clients)
	}
}

// TestServiceSecureSettlementMatchesClearPayment runs the Paillier
// passthrough end to end: the decrypted server-side payment must match the
// client's cleartext expectation.
func TestServiceSecureSettlementMatchesClearPayment(t *testing.T) {
	engines := testEngines(t)
	events := make(chan SessionEvent, 4)
	_, addr, shutdown := startServer(t, engines,
		WithSecureSettlement(128),
		WithSessionHook(func(ev SessionEvent) { events <- ev }),
	)
	defer shutdown()

	engine := engines["titanic"]
	client, err := Dial(context.Background(), addr,
		WithSession(engine.Session()), WithGains(engine.CatalogGains()))
	if err != nil {
		t.Fatal(err)
	}
	if !client.Secure() {
		t.Fatal("server did not announce secure settlement")
	}
	res, err := client.Bargain(context.Background(), BargainOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Success {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	var ev SessionEvent
	for ev.Summary == nil { // skip the Dial probe's listing event
		select {
		case ev = <-events:
		case <-time.After(5 * time.Second):
			t.Fatal("no session event")
		}
	}
	if !ev.Summary.Closed {
		t.Fatal("server did not record the close")
	}
	if diff := ev.Summary.Payment - res.Final.Payment; diff > 1e-5 || diff < -1e-5 {
		t.Fatalf("decrypted payment %v vs client expectation %v", ev.Summary.Payment, res.Final.Payment)
	}
}

// TestServiceCancellationMidSession cancels the context from a round
// observer: the session must stop between rounds with the context's error,
// and the server must survive to serve the next client.
func TestServiceCancellationMidSession(t *testing.T) {
	engines := testEngines(t)
	_, addr, shutdown := startServer(t, engines)
	defer shutdown()

	engine := engines["titanic"]
	client, err := Dial(context.Background(), addr,
		WithSession(engine.Session()), WithGains(engine.CatalogGains()))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rounds := 0
	obs := ObserverFuncs{Round: func(RoundRecord) {
		rounds++
		if rounds == 1 {
			cancel()
		}
	}}
	_, err = client.Bargain(ctx, BargainOptions{Seed: 7, Observers: []RoundObserver{obs}})
	if err == nil {
		t.Fatal("cancelled session returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The server keeps serving after the aborted session.
	res, err := client.Bargain(context.Background(), BargainOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Success {
		t.Fatalf("follow-up session outcome = %v", res.Outcome)
	}
}

// TestServiceMalformedClient feeds the server a valid handshake followed by
// a malformed envelope, then raw preamble garbage: both must fail their own
// session cleanly and leave the server serving.
func TestServiceMalformedClient(t *testing.T) {
	engines := testEngines(t)
	srv, addr, shutdown := startServer(t, engines)
	defer shutdown()

	// A JSON client that opens correctly and then sends a well-framed Quote
	// envelope with no payload — the session must fail cleanly, not panic
	// the server on a nil dereference.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "VFLM/2 json\n")
	fmt.Fprintf(conn, `{"Kind":5,"Client":{"Version":2,"Market":"titanic"}}`+"\n")
	fmt.Fprintf(conn, `{"Kind":2}`+"\n")
	buf := make([]byte, 4096)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err != nil { // the Hello
		t.Fatalf("no hello: %v", err)
	}
	conn.Close()

	// Raw garbage instead of a preamble.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn2.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	conn2.Close()

	// A healthy client still gets served.
	engine := engines["titanic"]
	client, err := Dial(context.Background(), addr,
		WithSession(engine.Session()), WithGains(engine.CatalogGains()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.Bargain(context.Background(), BargainOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Success {
		t.Fatalf("outcome = %v", res.Outcome)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		m := srv.Metrics()
		if m.Failed >= 1 && m.Rejected >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics = %+v, want >= 1 failed and >= 1 rejected", m)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServiceUnknownMarketAndCodec verifies the fail-fast paths of Dial.
func TestServiceUnknownMarketAndCodec(t *testing.T) {
	engines := testEngines(t)
	_, addr, shutdown := startServer(t, engines)
	defer shutdown()

	if _, err := Dial(context.Background(), addr, WithMarket("nasdaq")); err == nil {
		t.Fatal("dial to unknown market succeeded")
	} else if !strings.Contains(err.Error(), "nasdaq") {
		t.Fatalf("unknown-market error does not name the market: %v", err)
	}
	if _, err := Dial(context.Background(), addr, WithCodec("xml")); err == nil {
		t.Fatal("dial with unknown codec succeeded")
	}

	client, err := Dial(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if got := client.Markets(); len(got) != 2 {
		t.Fatalf("markets = %v", got)
	}
	if client.Market() != "titanic" {
		t.Fatalf("default market = %q", client.Market())
	}
	if len(client.Listing()) == 0 {
		t.Fatal("empty listing")
	}
	if _, err := client.Bargain(context.Background(), BargainOptions{}); err == nil {
		t.Fatal("Bargain without a session template succeeded")
	}
}

// TestServiceGracefulShutdown: cancelling the serve context must close the
// listener and return promptly when idle.
func TestServiceGracefulShutdown(t *testing.T) {
	engines := testEngines(t)
	srv := NewServer()
	if err := srv.Register("titanic", engines["titanic"]); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("serve returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after cancellation")
	}
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServiceBatchOverWire drives many sessions through one Client from a
// worker pool — the Client is safe for concurrent use because every
// Bargain dials its own connection.
func TestServiceBatchOverWire(t *testing.T) {
	engines := testEngines(t)
	_, addr, shutdown := startServer(t, engines, WithWorkers(4))
	defer shutdown()

	engine := engines["credit"]
	client, err := Dial(context.Background(), addr,
		WithMarket("credit"), WithSession(engine.Session()), WithGains(engine.CatalogGains()))
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := client.Bargain(context.Background(), BargainOptions{Seed: uint64(i + 1)})
			if err != nil {
				t.Error(err)
				return
			}
			outcomes[i] = res.Outcome
		}()
	}
	wg.Wait()
	for i, o := range outcomes {
		want, err := engine.Bargain(context.Background(), BargainOptions{Seed: uint64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if o != want.Outcome {
			t.Fatalf("seed %d: wire outcome %v vs engine %v", i+1, o, want.Outcome)
		}
	}
}
