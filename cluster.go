package vflmarket

import (
	"context"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/wire"
)

// EngineFactory builds the engine for a market when it lands on a shard —
// at boot-time registration and again on the destination shard of a
// migration. The factory receives the shard's MarketState so the engine
// binds its valuation memo to the shard's directory (WithState), which is
// what lets a migrated market price warm from the snapshots the move
// copied over.
type EngineFactory func(market string, state *MarketState) (*Engine, error)

// Transfer is one executed (or planned) market migration, in cluster
// terms: shard IDs rather than the fabric's internal descriptors.
type Transfer struct {
	Market string
	// From and To are shard IDs.
	From int
	To   int
	// Reason is the rebalancer's justification, "" for operator-initiated
	// moves.
	Reason string
}

// clusterShard is one running shard: its fabric entry, server, listener,
// fresh state handle, and the Serve goroutine's lifecycle.
type clusterShard struct {
	shard  fabric.Shard
	server *Server
	state  *MarketState // nil for memory-only clusters
	ln     net.Listener
	cancel context.CancelFunc
	done   chan error
	// stopped marks a shard killed by StopShard: its Serve goroutine has
	// been reaped and Close must not wait on it again.
	stopped bool
}

// Cluster is a sharded market fabric in one process: N shards, each a full
// Server on its own listener and its own state directory, a consistent-
// hash registry deciding which shard owns which market, and live migration
// between them. In tests the whole fleet runs in-process; in production
// the same registry/rebalancer machinery drives remote shards (cmd/fabric
// runs one fleet per process and any vflmarket.Client follows its
// redirects).
//
// Routing is cooperative: every shard knows the registry, so a client may
// dial any shard — a hello for a market the shard does not own is answered
// with a redirect to the owner (protocol v5), and the client re-dials
// there transparently. During a migration the market's sessions are
// severed on the source, the answer degrades to a retryable busy, and the
// clients' auto-resume loop lands them on the destination once it opens —
// continuing mid-game from the checkpoints the move carried over.
type Cluster struct {
	reg     *fabric.Registry
	factory EngineFactory
	shards  []*clusterShard
	rb      *fabric.Rebalancer
	codec   string
	timeout time.Duration

	mu      sync.Mutex
	markets map[string]bool

	closeOnce sync.Once
	closeErr  error
}

// registryDirectory adapts the fabric registry to the Server's
// MarketDirectory. Only markets actually registered somewhere in the
// cluster resolve: a consistent-hash ring would happily name an owner for
// any string, and redirecting a client toward a shard that has never heard
// of the market either would bounce it in a loop instead of rejecting it.
type registryDirectory struct {
	c *Cluster
}

// Epoch exposes the registry's shard-map version to the Server's stats
// report (the optional interface statsReport sniffs).
func (d registryDirectory) Epoch() uint64 { return d.c.reg.Epoch() }

func (d registryDirectory) Route(market string) (Route, bool) {
	d.c.mu.Lock()
	known := d.c.markets[market]
	d.c.mu.Unlock()
	if !known {
		return Route{}, false
	}
	rt := d.c.reg.RouteFor(market)
	return Route{Addr: rt.Shard.Addr, Epoch: rt.Epoch, Moving: rt.Moving}, true
}

// NewCluster starts n in-process shards listening on loopback. baseDir is
// the fleet's state root — each shard gets its own directory under it
// (shard-0, shard-1, …), opened with a fresh handle so shards never share
// in-memory state even in one process; "" runs the fleet memory-only
// (migrations then lose checkpoints, exactly like restarting a stateless
// server). opts apply to every shard's Server; the cluster adds the state
// binding and the directory itself.
func NewCluster(n int, baseDir string, factory EngineFactory, opts ...ServerOption) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("vflmarket: a cluster needs at least one shard")
	}
	if factory == nil {
		return nil, fmt.Errorf("vflmarket: a cluster needs an engine factory")
	}
	c := &Cluster{
		factory: factory,
		markets: make(map[string]bool),
		codec:   CodecGob,
		timeout: 30 * time.Second,
	}
	entries := make([]fabric.Shard, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("vflmarket: shard %d listener: %w", i, err)
		}
		sh := &clusterShard{ln: ln}
		sh.shard = fabric.Shard{ID: i, Name: fmt.Sprintf("shard-%d", i), Addr: ln.Addr().String()}
		if baseDir != "" {
			dir := filepath.Join(baseDir, fmt.Sprintf("shard-%d", i))
			ms, err := OpenMarketState(dir)
			if err != nil {
				ln.Close()
				c.Close()
				return nil, err
			}
			sh.state = ms
			sh.shard.StateDir = ms.Dir()
		}
		c.shards = append(c.shards, sh)
		entries = append(entries, sh.shard)
	}
	reg, err := fabric.NewRegistry(entries)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.reg = reg
	c.rb = fabric.NewRebalancer(reg, c.fetchStats)

	for _, sh := range c.shards {
		shOpts := append(append([]ServerOption(nil), opts...), WithDirectory(registryDirectory{c}))
		if sh.state != nil {
			shOpts = append(shOpts, WithMarketState(sh.state))
		}
		sh.server = NewServer(shOpts...)
		ctx, cancel := context.WithCancel(context.Background())
		sh.cancel = cancel
		sh.done = make(chan error, 1)
		go func(sh *clusterShard, ctx context.Context) {
			sh.done <- sh.server.Serve(ctx, sh.ln)
		}(sh, ctx)
	}
	return c, nil
}

// fetchStats is the rebalancer's StatsFunc: the over-the-wire admin read
// against a shard's address — the same path an out-of-process planner
// would use, so the in-process cluster exercises it too.
func (c *Cluster) fetchStats(ctx context.Context, shard fabric.Shard) (*wire.StatsReport, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", shard.Addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	return wire.FetchStats(ctx, conn, c.codec, c.timeout)
}

// Register places a market on the shard the registry assigns it and builds
// its engine there via the cluster's factory.
func (c *Cluster) Register(market string) error {
	owner, _ := c.reg.Owner(market)
	sh := c.shards[owner.ID]
	eng, err := c.factory(market, sh.state)
	if err != nil {
		return fmt.Errorf("vflmarket: build engine for %q: %w", market, err)
	}
	if err := sh.server.Register(market, eng); err != nil {
		return err
	}
	c.mu.Lock()
	c.markets[market] = true
	c.mu.Unlock()
	return nil
}

// Markets lists every market registered in the cluster, with its current
// owner shard ID.
func (c *Cluster) Markets() map[string]int {
	c.mu.Lock()
	names := make([]string, 0, len(c.markets))
	for m := range c.markets {
		names = append(names, m)
	}
	c.mu.Unlock()
	out := make(map[string]int, len(names))
	for _, m := range names {
		owner, _ := c.reg.Owner(m)
		out[m] = owner.ID
	}
	return out
}

// Addrs lists the shard addresses in ID order. Any of them is a valid dial
// target for any market: wrong doors redirect.
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.shard.Addr
	}
	return out
}

// Epoch returns the registry's current shard-map version.
func (c *Cluster) Epoch() uint64 { return c.reg.Epoch() }

// Shard returns the server behind one shard — for tests and in-process
// operators that want direct metric access; remote operators use Stats.
func (c *Cluster) Shard(id int) (*Server, error) {
	if id < 0 || id >= len(c.shards) {
		return nil, fmt.Errorf("vflmarket: no shard %d (have %d)", id, len(c.shards))
	}
	return c.shards[id].server, nil
}

// Dial connects a client to the market's owner shard. Dialing any shard
// address directly also works — the fabric redirects — but going straight
// to the owner saves the hop. Every shard address rides along as a
// fallback, so the client survives its owner dying mid-session: the
// rotation lands it on a survivor, whose redirect names the new owner.
func (c *Cluster) Dial(ctx context.Context, market string, opts ...DialOption) (*Client, error) {
	owner, _ := c.reg.Owner(market)
	base := []DialOption{WithMarket(market), WithFallbackAddrs(c.Addrs()...)}
	return Dial(ctx, owner.Addr, append(base, opts...)...)
}

// Stats polls every shard's metrics snapshot over the wire, keyed by shard
// ID. Unreachable shards are omitted.
func (c *Cluster) Stats(ctx context.Context) map[int]*StatsReport {
	out := make(map[int]*StatsReport)
	for _, sh := range c.shards {
		if rep, err := c.fetchStats(ctx, sh.shard); err == nil {
			out[sh.shard.ID] = rep
		}
	}
	return out
}

// Health probes every shard's admin endpoint over the wire — a real
// KindStats exchange, not an in-process check, so it sees exactly what a
// remote operator would: a wedged or dead shard reads false even while
// its process object still exists. Each probe is bounded at 2 seconds
// (tighter if ctx expires sooner).
func (c *Cluster) Health(ctx context.Context) map[int]bool {
	out := make(map[int]bool, len(c.shards))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, sh := range c.shards {
		wg.Add(1)
		go func(sh *clusterShard) {
			defer wg.Done()
			probeCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			_, err := c.fetchStats(probeCtx, sh.shard)
			mu.Lock()
			out[sh.shard.ID] = err == nil
			mu.Unlock()
		}(sh)
	}
	wg.Wait()
	return out
}

// StopShard kills one shard abruptly: the listener closes, every live
// connection — multiplexed and serial — is hard-severed, and the Serve
// goroutine is reaped. In-flight sessions die with transport errors, the
// shard's final durable state flushes on the way down, and the registry
// still names the corpse as owner until Failover re-homes its markets.
// This is the failover drill's kill switch.
func (c *Cluster) StopShard(id int) error {
	if id < 0 || id >= len(c.shards) {
		return fmt.Errorf("vflmarket: no shard %d (have %d)", id, len(c.shards))
	}
	sh := c.shards[id]
	if sh.stopped {
		return nil
	}
	if sh.cancel != nil {
		sh.cancel()
	}
	sh.server.Sever()
	if sh.done != nil {
		<-sh.done
		sh.done = nil
	}
	sh.stopped = true
	return nil
}

// Failover re-homes every market owned by a dead shard onto the survivors,
// round-robin in market-name order: each market is marked moving in the
// registry (stragglers back off on busy), its durable snapshots are copied
// out of the dead shard's state directory, an engine opens warm on the
// survivor, and the move commits — after which redirects point at the new
// owner and severed clients' resume loops land there, continuing
// mid-bargain from the last settled checkpoint. Unlike Migrate there is no
// source eviction: the owner is already dead, its sessions already
// severed. The executed transfers are returned; an error aborts the
// in-flight move (the registry re-points at the dead shard — no better
// owner exists) and returns the moves completed so far.
func (c *Cluster) Failover(ctx context.Context, dead int) ([]Transfer, error) {
	if dead < 0 || dead >= len(c.shards) {
		return nil, fmt.Errorf("vflmarket: no shard %d (have %d)", dead, len(c.shards))
	}
	var survivors []*clusterShard
	for _, sh := range c.shards {
		if sh.shard.ID != dead && !sh.stopped {
			survivors = append(survivors, sh)
		}
	}
	if len(survivors) == 0 {
		return nil, fmt.Errorf("vflmarket: failover of shard %d: no surviving shards", dead)
	}
	c.mu.Lock()
	var doomed []string
	for m := range c.markets {
		if owner, _ := c.reg.Owner(m); owner.ID == dead {
			doomed = append(doomed, m)
		}
	}
	c.mu.Unlock()
	sort.Strings(doomed)

	src := c.shards[dead]
	out := make([]Transfer, 0, len(doomed))
	for i, market := range doomed {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		dst := survivors[i%len(survivors)]
		if _, err := c.reg.BeginMove(market, dst.shard.ID); err != nil {
			return out, err
		}
		if err := copyMarketSnapshots(src.shard.StateDir, dst.shard.StateDir, market); err != nil {
			c.reg.AbortMove(market)
			return out, fmt.Errorf("vflmarket: failover %q: copy state: %w", market, err)
		}
		eng, err := c.factory(market, dst.state)
		if err != nil {
			c.reg.AbortMove(market)
			return out, fmt.Errorf("vflmarket: failover %q: build engine: %w", market, err)
		}
		if err := dst.server.Register(market, eng); err != nil {
			c.reg.AbortMove(market)
			return out, fmt.Errorf("vflmarket: failover %q: open on shard %d: %w", market, dst.shard.ID, err)
		}
		if _, err := c.reg.CommitMove(market); err != nil {
			return out, err
		}
		out = append(out, Transfer{Market: market, From: dead, To: dst.shard.ID, Reason: "failover"})
	}
	return out, nil
}

// Migrate moves a market onto the given shard live: mark it moving in the
// registry (stragglers get a retryable busy), evict it from the source —
// severing in-flight sessions, which their clients auto-resume — flush and
// copy its durable snapshots to the destination's directory, open it warm
// there, and commit the move (pin + epoch bump), after which redirects
// point at the new owner. A failed migration is rolled back onto the
// source shard.
func (c *Cluster) Migrate(ctx context.Context, market string, to int) error {
	c.mu.Lock()
	known := c.markets[market]
	c.mu.Unlock()
	if !known {
		return fmt.Errorf("vflmarket: unknown market %q", market)
	}
	from, _ := c.reg.Owner(market)
	if _, err := c.reg.BeginMove(market, to); err != nil {
		return err
	}
	src, dst := c.shards[from.ID], c.shards[to]

	rollback := func(cause error) error {
		c.reg.AbortMove(market)
		if eng, ferr := c.factory(market, src.state); ferr == nil {
			_ = src.server.Register(market, eng)
		}
		return cause
	}

	// Evict: sever the market's sessions and flush its final checkpoints.
	// From here until the destination registers, redialing clients are told
	// "busy, retry" — their backoff bridges the gap.
	if err := src.server.Unregister(market); err != nil {
		return rollback(fmt.Errorf("vflmarket: migrate %q: evict: %w", market, err))
	}
	if err := copyMarketSnapshots(src.shard.StateDir, dst.shard.StateDir, market); err != nil {
		return rollback(fmt.Errorf("vflmarket: migrate %q: copy state: %w", market, err))
	}
	eng, err := c.factory(market, dst.state)
	if err != nil {
		return rollback(fmt.Errorf("vflmarket: migrate %q: build engine: %w", market, err))
	}
	if err := dst.server.Register(market, eng); err != nil {
		return rollback(fmt.Errorf("vflmarket: migrate %q: open on shard %d: %w", market, to, err))
	}
	if _, err := c.reg.CommitMove(market); err != nil {
		return err
	}
	return ctx.Err()
}

// Rebalance runs one planning pass over live shard stats and executes the
// planned transfers (at most one per pass — see fabric.Rebalancer). The
// executed transfers are returned; an empty slice means the fleet is
// balanced.
func (c *Cluster) Rebalance(ctx context.Context) ([]Transfer, error) {
	plans := c.rb.Plan(ctx)
	out := make([]Transfer, 0, len(plans))
	for _, p := range plans {
		if err := c.Migrate(ctx, p.Market, p.To.ID); err != nil {
			return out, err
		}
		out = append(out, Transfer{Market: p.Market, From: p.From.ID, To: p.To.ID, Reason: p.Reason})
	}
	return out, nil
}

// Close shuts the fleet down: every shard's Serve unwinds gracefully
// (in-flight sessions finish, state flushes). The first unexpected error
// is returned; repeated calls return the same answer.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		for _, sh := range c.shards {
			if sh.cancel != nil {
				sh.cancel()
			}
		}
		for _, sh := range c.shards {
			if sh.done != nil {
				if err := <-sh.done; err != nil && err != context.Canceled && c.closeErr == nil {
					c.closeErr = err
				}
			} else if sh.ln != nil {
				sh.ln.Close()
			}
		}
	})
	return c.closeErr
}

// copyMarketSnapshots carries a market's durable snapshots between shard
// state directories: its estimator checkpoints (estimators/<slug>/), its
// Paillier key (keys/<slug>.snap), and the shared oracle memo tree
// (oracle/ — keyed by dataset config, not market, so extra entries are
// harmless and warm the destination). Same or empty directories are a
// no-op: the shards already share (or have no) state.
func copyMarketSnapshots(srcDir, dstDir, market string) error {
	if srcDir == "" || dstDir == "" || srcDir == dstDir {
		return nil
	}
	slug := marketSlug(market)
	trees := []string{
		filepath.Join("estimators", slug),
		"oracle",
	}
	for _, tree := range trees {
		root := filepath.Join(srcDir, tree)
		err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
			if err != nil || info.IsDir() {
				return err
			}
			rel, rerr := filepath.Rel(srcDir, path)
			if rerr != nil {
				return rerr
			}
			return copyFile(path, filepath.Join(dstDir, rel))
		})
		if err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	key := filepath.Join("keys", slug+".snap")
	if _, err := os.Stat(filepath.Join(srcDir, key)); err == nil {
		if err := copyFile(filepath.Join(srcDir, key), filepath.Join(dstDir, key)); err != nil {
			return err
		}
	}
	return nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	tmp := dst + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(tmp)
		return err
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, dst)
}
