package vflmarket

import (
	"errors"
	mrand "math/rand"
	"sync"
	"time"
)

// RetryPolicy is the client's shared schedule for retrying transient
// failures: how many attempts one operation makes and how the waits
// between them grow. One policy (WithRetryPolicy) drives the initial
// Dial, Stats reads, redirect/failover address rotation, and the
// imperfect-session resume loop. The schedule is capped exponential with
// jitter — wait k is Base·2^(k−1) clamped to Max, scaled by a uniform
// factor in [1−Jitter, 1+Jitter] so a fleet of clients severed together
// (a migration or shard failure cuts every session at once) does not
// redial in lockstep.
type RetryPolicy struct {
	// Attempts is the total number of attempts one call makes, the first
	// included. <= 0 keeps the default (12).
	Attempts int
	// Base is the wait before the first retry. <= 0 keeps the default
	// (150ms).
	Base time.Duration
	// Max caps a single wait once the doubling reaches it. <= 0 keeps the
	// default (2s).
	Max time.Duration
	// Jitter is the ± fraction randomizing each wait. 0 keeps the default
	// (0.2); negative disables jitter (deterministic schedule, for tests).
	Jitter float64
	// Rand, when set, is the jitter source — injecting a seeded
	// *rand.Rand makes the whole wait schedule deterministic and
	// replayable. nil draws from the shared global source. The policy
	// serializes access, so one Rand may back concurrent sessions.
	Rand *mrand.Rand
}

// ResumeBackoff is the historical name of RetryPolicy, kept as an alias:
// it predates the policy's generalization beyond the imperfect-session
// resume loop.
type ResumeBackoff = RetryPolicy

func (b RetryPolicy) withDefaults() RetryPolicy {
	if b.Attempts <= 0 {
		b.Attempts = 12
	}
	if b.Base <= 0 {
		b.Base = 150 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.Jitter > 1 {
		b.Jitter = 1
	}
	return b
}

// jitterMu serializes draws from an injected Rand: policy values are
// copied freely across goroutines but share the caller's one source.
var jitterMu sync.Mutex

// wait returns the sleep before retry k (k >= 1) on a defaulted policy.
func (b RetryPolicy) wait(k int) time.Duration {
	d := b.Base
	for i := 1; i < k && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 {
		var r float64
		if b.Rand != nil {
			jitterMu.Lock()
			r = b.Rand.Float64()
			jitterMu.Unlock()
		} else {
			r = mrand.Float64()
		}
		d = time.Duration(float64(d) * (1 + b.Jitter*(2*r-1)))
	}
	return d
}

// ErrCircuitOpen reports a dial refused locally by the client's per-address
// circuit breaker: the address has failed enough consecutive dials that
// further attempts are suppressed until the cooldown admits a probe.
// Retryable — by then the breaker may have half-opened — and cheap: a
// fast-fail costs no syscall, which is the point.
var ErrCircuitOpen = errors.New("vflmarket: circuit open: address suppressed after consecutive dial failures")

// BreakerPolicy tunes the per-address circuit breakers in the client's
// connection pool.
type BreakerPolicy struct {
	// Threshold is the consecutive dial-failure count that trips the
	// breaker open. <= 0 keeps the default (5).
	Threshold int
	// Cooldown is how long a tripped breaker suppresses dials before
	// half-opening for a single probe. <= 0 keeps the default (1s).
	Cooldown time.Duration
	// Disabled turns the breaker off: every dial is attempted.
	Disabled bool
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold <= 0 {
		p.Threshold = 5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = time.Second
	}
	return p
}

// Breaker states, as reported by PoolStats.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// breaker is one address's circuit-breaker state machine: closed (dials
// flow; consecutive failures count up) → open (dials fast-fail until the
// cooldown) → half-open (exactly one probe dial is admitted; success
// closes, failure re-opens). Dial outcomes — TCP connect plus the wire
// handshake — are the only inputs, so a server that accepts and
// handshakes cleanly always closes the breaker even while sessions on it
// are dying to mid-stream faults.
type breaker struct {
	mu     sync.Mutex
	policy BreakerPolicy

	state    string
	fails    int       // consecutive failures since the last success
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe dial is in flight

	trips     uint64
	fastFails uint64
	dials     uint64
	dialFails uint64
}

func newBreaker(p BreakerPolicy) *breaker {
	return &breaker{policy: p.withDefaults(), state: BreakerClosed}
}

// allow gates one dial attempt. A nil return admits the dial (and, in the
// half-open state, claims the single probe slot); ErrCircuitOpen means
// fast-fail without touching the network.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.policy.Disabled {
		return nil
	}
	switch b.state {
	case BreakerOpen:
		if time.Since(b.openedAt) < b.policy.Cooldown {
			b.fastFails++
			return ErrCircuitOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	case BreakerHalfOpen:
		if b.probing {
			b.fastFails++
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
	return nil
}

// success records a completed dial+handshake: the address is healthy.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dials++
	b.fails = 0
	b.probing = false
	b.state = BreakerClosed
}

// releaseProbe returns an unused half-open probe slot without recording
// an outcome — the dial ended for reasons unrelated to address health.
func (b *breaker) releaseProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// failure records a failed dial or handshake.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dials++
	b.dialFails++
	b.fails++
	if b.policy.Disabled {
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		// The probe itself failed: back to fully open for another cooldown.
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.probing = false
		b.trips++
	case BreakerClosed:
		if b.fails >= b.policy.Threshold {
			b.state = BreakerOpen
			b.openedAt = time.Now()
			b.trips++
		}
	}
}

// AddrPoolStats is one address's slice of Client.PoolStats: pool
// occupancy plus the circuit breaker's state and counters, the client-side
// mirror of ServerMetrics.
type AddrPoolStats struct {
	Conns            int    // pooled live connections
	Active           int    // sessions currently open across them
	Breaker          string // BreakerClosed, BreakerOpen, or BreakerHalfOpen
	ConsecutiveFails int    // dial failures since the last success
	Trips            uint64 // times the breaker tripped open
	FastFails        uint64 // dials suppressed without touching the network
	Dials            uint64 // dial attempts that reached the network
	DialFailures     uint64 // of those, how many failed
}

// PoolStats maps server address → pool and breaker counters.
type PoolStats map[string]AddrPoolStats

// PoolStats snapshots the connection pool and per-address circuit
// breakers: one entry per address the client has dialed or been
// redirected to.
func (c *Client) PoolStats() PoolStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(PoolStats, len(c.breakers))
	for addr, conns := range c.pool {
		st := out[addr]
		st.Conns = len(conns)
		for _, mc := range conns {
			st.Active += mc.Active()
		}
		out[addr] = st
	}
	for addr, b := range c.breakers {
		st := out[addr]
		b.mu.Lock()
		st.Breaker = b.state
		st.ConsecutiveFails = b.fails
		st.Trips = b.trips
		st.FastFails = b.fastFails
		st.Dials = b.dials
		st.DialFailures = b.dialFails
		b.mu.Unlock()
		out[addr] = st
	}
	return out
}

// breakerFor returns addr's breaker, creating it closed on first use.
// Callers must not hold c.mu.
func (c *Client) breakerFor(addr string) *breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[addr]
	if b == nil {
		b = newBreaker(c.cfg.breaker)
		c.breakers[addr] = b
	}
	return b
}
