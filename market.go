package vflmarket

import "context"

// Market is the original blocking façade over a built environment.
//
// Deprecated: use Engine, whose entry points take a context.Context, accept
// RoundObservers, and add batch execution. Market remains as a thin shim so
// existing callers keep compiling; every method delegates to an Engine with
// context.Background().
type Market struct {
	e *Engine
}

// New builds a market for the configured dataset.
//
// Deprecated: use NewEngine (or NewEngineFromConfig to keep the struct
// form).
func New(cfg Config) (*Market, error) {
	e, err := NewEngineFromConfig(cfg)
	if err != nil {
		return nil, err
	}
	return &Market{e: e}, nil
}

// Engine returns the context-aware engine behind the façade — the migration
// path for callers that built a Market but want streaming or batch runs.
func (m *Market) Engine() *Engine { return m.e }

// Catalog exposes the data party's inventory.
func (m *Market) Catalog() *Catalog { return m.e.Catalog() }

// Session returns the session template. Callers may adjust a copy and pass
// it to BargainWith.
func (m *Market) Session() SessionConfig { return m.e.Session() }

// Bargain plays one perfect-information bargaining game with the template
// session.
//
// Deprecated: use Engine.Bargain.
func (m *Market) Bargain(opts BargainOptions) (*Result, error) {
	return m.e.Bargain(context.Background(), opts)
}

// BargainWith plays one perfect-information game with a fully custom
// session configuration.
//
// Deprecated: use Engine.BargainWith.
func (m *Market) BargainWith(cfg SessionConfig) (*Result, error) {
	return m.e.BargainWith(context.Background(), cfg)
}

// BargainImperfect plays one imperfect-information game (explorationRounds
// is N of Case VII; 0 means 100).
//
// Deprecated: use Engine.BargainImperfect.
func (m *Market) BargainImperfect(seed uint64, explorationRounds int) (*ImperfectResult, error) {
	return m.e.BargainImperfect(context.Background(), seed, explorationRounds)
}
