// Package vflmarket is the public API of the bargaining-based feature
// trading market for vertical federated learning, reproducing Cui et al.,
// "A Bargaining-based Approach for Feature Trading in Vertical Federated
// Learning" (ICDE 2025).
//
// The market couples one task party (the buyer: owns labels, wants model
// performance) with one data party (the seller: owns feature bundles with
// private reserved prices). The task party quotes a price (p, P0, Ph); the
// data party answers with a feature bundle; a VFL course realizes a
// performance gain ΔG that prices the transaction through
// min{max{P0, P0 + p·ΔG}, Ph}. Bargaining iterates until the equilibrium
// criterion (Ph - P0)/p = ΔG is met or a party walks away.
//
// Quick start:
//
//	market, err := vflmarket.New(vflmarket.Config{Dataset: "titanic", Seed: 1})
//	res, err := market.Bargain(vflmarket.BargainOptions{})
//	fmt.Println(res.Outcome, res.Final.Payment)
//
// The underlying pieces — the bargaining engines, the VFL simulator, the
// dataset generators, the experiment harness regenerating every table and
// figure of the paper — live in internal packages and surface here through
// type aliases, so downstream code needs only this import.
package vflmarket

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exp"
	"repro/internal/vfl"
)

// Re-exported pricing and bargaining types. See the core package docs on
// each for the paper mapping (Eq. 2 payments, Eq. 5 equilibrium, Cases 1–6
// and I–VII termination).
type (
	// QuotedPrice is the task party's offer p = (p, P0, Ph).
	QuotedPrice = core.QuotedPrice
	// ReservedPrice is the data party's private per-bundle floor (p_l, P_l).
	ReservedPrice = core.ReservedPrice
	// Bundle is one tradable good: a set of data-party features.
	Bundle = core.Bundle
	// Catalog is the data party's inventory with per-bundle gains.
	Catalog = core.Catalog
	// CatalogConfig controls catalog generation.
	CatalogConfig = core.CatalogConfig
	// SessionConfig parameterizes one bargaining game.
	SessionConfig = core.SessionConfig
	// ImperfectConfig parameterizes estimation-based bargaining.
	ImperfectConfig = core.ImperfectConfig
	// Result is a bargaining trace and outcome.
	Result = core.Result
	// ImperfectResult adds the estimator learning curves.
	ImperfectResult = core.ImperfectResult
	// RoundRecord is one bargaining round's state.
	RoundRecord = core.RoundRecord
	// Outcome is how a session ended.
	Outcome = core.Outcome
	// CostModel is a bargaining-cost function C(T).
	CostModel = core.CostModel
	// GainProvider supplies per-bundle performance gains.
	GainProvider = core.GainProvider
	// GainFunc adapts a function to GainProvider.
	GainFunc = core.GainFunc
)

// Re-exported enum values.
const (
	Success       = core.Success
	FailData      = core.FailData
	FailTask      = core.FailTask
	FailMaxRounds = core.FailMaxRounds

	TaskStrategic     = core.TaskStrategic
	TaskIncreasePrice = core.TaskIncreasePrice
	TaskBisection     = core.TaskBisection
	DataStrategic     = core.DataStrategic
	DataRandomBundle  = core.DataRandomBundle

	NoCost     = core.NoCost
	LinearCost = core.LinearCost
	ExpCost    = core.ExpCost
)

// EquilibriumPrice returns the quote whose payment knee sits exactly at
// targetGain (Theorem 3.1).
func EquilibriumPrice(rate, base, targetGain float64) QuotedPrice {
	return core.EquilibriumPrice(rate, base, targetGain)
}

// Config selects and sizes a market environment.
type Config struct {
	// Dataset is "titanic", "credit", or "adult".
	Dataset string
	// Model is "forest" (default) or "mlp".
	Model string
	// Synthetic replaces real VFL training with the closed-form gain model
	// (fast; good for exploration).
	Synthetic bool
	// Scale in (0, 1] shrinks data and model sizes; 0 means 1 (paper scale).
	Scale float64
	Seed  uint64
}

// Market is a built environment: the data party's priced catalog plus the
// task party's session template.
type Market struct {
	env *exp.Env
}

// New builds a market for the configured dataset: generate data, split it
// vertically, train (or synthesize) the per-bundle gains, and derive the
// opening quote and target gain.
func New(cfg Config) (*Market, error) {
	name := dataset.Name(cfg.Dataset)
	switch name {
	case dataset.Titanic, dataset.Credit, dataset.Adult:
	case "":
		name = dataset.Titanic
	default:
		return nil, fmt.Errorf("vflmarket: unknown dataset %q", cfg.Dataset)
	}
	var model vfl.BaseModel
	switch cfg.Model {
	case "", "forest":
		model = vfl.RandomForest
	case "mlp":
		model = vfl.MLP
	default:
		return nil, fmt.Errorf("vflmarket: unknown model %q (want \"forest\" or \"mlp\")", cfg.Model)
	}
	scale := cfg.Scale
	if scale == 0 {
		scale = 1
	}
	p := exp.DefaultProfile(name, model).Scaled(scale)
	if cfg.Synthetic {
		p.GainSource = exp.GainSynthetic
	}
	env, err := exp.BuildEnv(p, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Market{env: env}, nil
}

// Catalog exposes the data party's inventory.
func (m *Market) Catalog() *Catalog { return m.env.Catalog }

// Session returns the session template: target gain ΔG* = ΔG_max, the
// opening quote, paper-default tolerances. Callers may adjust a copy and
// pass it to BargainWith.
func (m *Market) Session() SessionConfig { return m.env.Session }

// BargainOptions tweak a standard bargaining run.
type BargainOptions struct {
	Seed      uint64
	TaskGreed core.TaskStrategy // default TaskStrategic
	DataGreed core.DataStrategy // default DataStrategic
	TaskCost  CostModel
	DataCost  CostModel
}

// Bargain plays one perfect-information bargaining game with the template
// session.
func (m *Market) Bargain(opts BargainOptions) (*Result, error) {
	cfg := m.env.Session
	cfg.Seed = opts.Seed
	cfg.TaskStrategy = opts.TaskGreed
	cfg.DataStrategy = opts.DataGreed
	cfg.TaskCost = opts.TaskCost
	cfg.DataCost = opts.DataCost
	return core.RunPerfect(m.env.Catalog, cfg)
}

// BargainWith plays one perfect-information game with a fully custom
// session configuration.
func (m *Market) BargainWith(cfg SessionConfig) (*Result, error) {
	return core.RunPerfect(m.env.Catalog, cfg)
}

// BargainImperfect plays one imperfect-information game: neither party
// knows bundle gains in advance; both learn estimators online
// (explorationRounds is N of Case VII; 0 means 100).
func (m *Market) BargainImperfect(seed uint64, explorationRounds int) (*ImperfectResult, error) {
	cfg := m.env.Session
	cfg.Seed = seed
	cfg.EpsTask = m.env.Profile.EpsImperfect
	cfg.EpsData = m.env.Profile.EpsImperfect
	return core.RunImperfect(m.env.Catalog, core.ImperfectConfig{
		Session:           cfg,
		ExplorationRounds: explorationRounds,
	})
}
