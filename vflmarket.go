// Package vflmarket is the public API of the bargaining-based feature
// trading market for vertical federated learning, reproducing Cui et al.,
// "A Bargaining-based Approach for Feature Trading in Vertical Federated
// Learning" (ICDE 2025).
//
// The market couples one task party (the buyer: owns labels, wants model
// performance) with one data party (the seller: owns feature bundles with
// private reserved prices). The task party quotes a price (p, P0, Ph); the
// data party answers with a feature bundle; a VFL course realizes a
// performance gain ΔG that prices the transaction through
// min{max{P0, P0 + p·ΔG}, Ph}. Bargaining iterates until the equilibrium
// criterion (Ph - P0)/p = ΔG is met or a party walks away.
//
// Quick start:
//
//	engine, err := vflmarket.NewEngine("titanic", vflmarket.WithSeed(1))
//	res, err := engine.Bargain(ctx, vflmarket.BargainOptions{})
//	fmt.Println(res.Outcome, res.Final.Payment)
//
// An Engine is built once and then runs any number of bargaining sessions,
// serially or concurrently. Every run entry point takes a context.Context
// and honors cancellation and deadlines between bargaining rounds; attach
// RoundObservers to stream per-round progress instead of waiting for the
// final trace; use Engine.BargainBatch to play many sessions across a
// bounded worker pool with deterministic per-session randomness.
//
// The market also runs as a network service — the two-organisation
// deployment the paper's production setting implies. A Server exposes any
// number of named Engines (a multi-market registry) behind one listener
// with a bounded session pool, IO deadlines, metrics, and graceful
// shutdown; Dial returns a Client whose Bargain mirrors Engine.Bargain —
// same options merging, observers, and cancellation — over a
// codec-agnostic wire protocol (gob or JSON framing), optionally settling
// under Paillier encryption (§3.6). Because the networked client plays the
// exact same game loop as the in-process engine, its results are
// bit-identical for the same seed and catalog.
//
// Both information regimes run over the same wire protocol: the handshake
// names the regime, and Client.BargainImperfect plays the §3.5
// estimation-based game — exploration rounds, online-learned ΔG estimators
// on both endpoints, experience replay — against a remote data party that
// trains on the realized gains each settlement feeds back. The same
// bit-identity contract holds: a networked imperfect session reproduces
// Engine.BargainImperfect exactly for the same seed and mirrored engines
// (imperfect sessions settle in clear — the realized gain is the training
// signal — so they are refused by Paillier-settling servers).
//
// The underlying pieces — the bargaining engines, the wire protocol, the
// VFL simulator, the dataset generators, the experiment harness
// regenerating every table and figure of the paper — live in internal
// packages and surface here through type aliases, so downstream code needs
// only this import.
package vflmarket

import (
	"repro/internal/core"
)

// Re-exported pricing and bargaining types. See the core package docs on
// each for the paper mapping (Eq. 2 payments, Eq. 5 equilibrium, Cases 1–6
// and I–VII termination).
type (
	// QuotedPrice is the task party's offer p = (p, P0, Ph).
	QuotedPrice = core.QuotedPrice
	// ReservedPrice is the data party's private per-bundle floor (p_l, P_l).
	ReservedPrice = core.ReservedPrice
	// Bundle is one tradable good: a set of data-party features.
	Bundle = core.Bundle
	// Catalog is the data party's inventory with per-bundle gains.
	Catalog = core.Catalog
	// CatalogConfig controls catalog generation.
	CatalogConfig = core.CatalogConfig
	// SessionConfig parameterizes one bargaining game.
	SessionConfig = core.SessionConfig
	// ImperfectParams are the knobs of estimation-based bargaining
	// (exploration rounds N, candidate pool, replay budget).
	ImperfectParams = core.ImperfectParams
	// Result is a bargaining trace and outcome.
	Result = core.Result
	// ImperfectResult adds the estimator learning curves.
	ImperfectResult = core.ImperfectResult
	// RoundRecord is one bargaining round's state.
	RoundRecord = core.RoundRecord
	// Outcome is how a session ended.
	Outcome = core.Outcome
	// CostModel is a bargaining-cost function C(T).
	CostModel = core.CostModel
	// GainProvider supplies per-bundle performance gains.
	GainProvider = core.GainProvider
	// GainFunc adapts a function to GainProvider.
	GainFunc = core.GainFunc
	// RoundObserver streams bargaining progress: OnRound per realized
	// round, OnOutcome once at termination.
	RoundObserver = core.RoundObserver
	// ObserverFuncs adapts plain functions to RoundObserver.
	ObserverFuncs = core.ObserverFuncs
)

// Re-exported enum values.
const (
	Success       = core.Success
	FailData      = core.FailData
	FailTask      = core.FailTask
	FailMaxRounds = core.FailMaxRounds

	TaskStrategic     = core.TaskStrategic
	TaskIncreasePrice = core.TaskIncreasePrice
	TaskBisection     = core.TaskBisection
	DataStrategic     = core.DataStrategic
	DataRandomBundle  = core.DataRandomBundle

	NoCost     = core.NoCost
	LinearCost = core.LinearCost
	ExpCost    = core.ExpCost
)

// EquilibriumPrice returns the quote whose payment knee sits exactly at
// targetGain (Theorem 3.1).
func EquilibriumPrice(rate, base, targetGain float64) QuotedPrice {
	return core.EquilibriumPrice(rate, base, targetGain)
}

// Config selects and sizes a market environment. It is the struct form of
// the functional options accepted by NewEngine; New and NewEngineFromConfig
// take it directly.
type Config struct {
	// Dataset is "titanic", "credit", or "adult".
	Dataset string
	// Model is "forest" (default) or "mlp".
	Model string
	// Synthetic replaces real VFL training with the closed-form gain model
	// (fast; good for exploration).
	Synthetic bool
	// Scale in (0, 1] shrinks data and model sizes; 0 means 1 (paper scale).
	Scale float64
	Seed  uint64
	// ValuationWorkers bounds the valuation oracle's worker pool when
	// catalog construction pre-prices bundles with real VFL training: 0
	// means min(GOMAXPROCS, bundles), 1 restores the serial pre-warming
	// behavior. Synthetic engines never train, so it is inert for them.
	ValuationWorkers int
	// StateDir, when non-empty, binds the engine to a durable state
	// directory (shared process-wide per directory — see SharedMarketState):
	// the engine's valuation oracle is resolved through the directory's
	// registry, so its memoized gains survive restarts and are shared with
	// every engine of the same dataset/seed/config. Ignored when State is
	// set.
	StateDir string
	// State binds the engine to an explicit MarketState handle, taking
	// precedence over StateDir. Used by tests that simulate restarts with
	// OpenMarketState.
	State *MarketState
}
