package vflmarket

import (
	"math"
	"testing"
)

func fastMarket(t testing.TB, ds string) *Market {
	t.Helper()
	m, err := New(Config{Dataset: ds, Synthetic: true, Scale: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewDefaultsToTitanic(t *testing.T) {
	m, err := New(Config{Synthetic: true, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Catalog().Len() == 0 {
		t.Fatal("empty catalog")
	}
}

func TestNewRejectsUnknowns(t *testing.T) {
	if _, err := New(Config{Dataset: "mnist"}); err == nil {
		t.Fatal("expected dataset error")
	}
	if _, err := New(Config{Dataset: "titanic", Model: "transformer"}); err == nil {
		t.Fatal("expected model error")
	}
}

func TestBargainSucceeds(t *testing.T) {
	m := fastMarket(t, "titanic")
	res, err := m.Bargain(BargainOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Success {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.Final.NetProfit <= 0 || res.Final.Payment <= 0 {
		t.Fatalf("degenerate deal: %+v", res.Final)
	}
	// The equilibrium criterion holds at close.
	slack := res.Final.Price.TargetGain() - res.Final.Gain
	if slack > 2e-3+1e-9 {
		t.Fatalf("closing slack %v", slack)
	}
}

func TestBargainWithCustomSession(t *testing.T) {
	m := fastMarket(t, "adult")
	cfg := m.Session()
	cfg.Seed = 11
	cfg.MaxRounds = 5 // force exhaustion
	res, err := m.BargainWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) > 5 {
		t.Fatalf("rounds = %d, cap 5", len(res.Rounds))
	}
}

func TestBargainImperfectRuns(t *testing.T) {
	m := fastMarket(t, "titanic")
	res, err := m.BargainImperfect(7, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 30 && res.Outcome != FailMaxRounds {
		t.Fatalf("terminated during exploration: %v after %d rounds", res.Outcome, len(res.Rounds))
	}
	if len(res.TaskMSE) != len(res.Rounds) {
		t.Fatal("MSE trace length mismatch")
	}
}

func TestBargainBaselinesThroughFacade(t *testing.T) {
	m := fastMarket(t, "titanic")
	res, err := m.Bargain(BargainOptions{Seed: 1, DataGreed: DataRandomBundle})
	if err != nil {
		t.Fatal(err)
	}
	switch res.Outcome {
	case Success, FailTask, FailMaxRounds:
	default:
		t.Fatalf("unexpected outcome %v", res.Outcome)
	}
	res2, err := m.Bargain(BargainOptions{Seed: 1, TaskGreed: TaskIncreasePrice})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Outcome == FailData {
		t.Fatalf("unexpected outcome %v", res2.Outcome)
	}
}

func TestBargainWithCost(t *testing.T) {
	m := fastMarket(t, "titanic")
	free, err := m.Bargain(BargainOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := m.Bargain(BargainOptions{
		Seed:     2,
		TaskCost: CostModel{Kind: LinearCost, Factor: 1},
		DataCost: CostModel{Kind: LinearCost, Factor: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if costly.Outcome == Success && free.Outcome == Success &&
		len(costly.Rounds) > len(free.Rounds) {
		t.Fatalf("cost lengthened bargaining: %d vs %d", len(costly.Rounds), len(free.Rounds))
	}
}

func TestEquilibriumPriceAlias(t *testing.T) {
	q := EquilibriumPrice(10, 1, 0.2)
	if math.Abs(q.TargetGain()-0.2) > 1e-12 {
		t.Fatalf("TargetGain = %v", q.TargetGain())
	}
}

func TestSessionIsACopy(t *testing.T) {
	m := fastMarket(t, "titanic")
	s := m.Session()
	s.U = -1
	if m.Session().U == -1 {
		t.Fatal("Session leaked internal state")
	}
}

func TestRealVFLMarketSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real VFL training in -short mode")
	}
	m, err := New(Config{Dataset: "titanic", Scale: 0.3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Bargain(BargainOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Success && res.Outcome != FailMaxRounds && res.Outcome != FailTask {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}
