package vflmarket

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/secure"
	"repro/internal/wire"
)

// DialOption configures a Client at Dial time.
type DialOption func(*dialConfig)

type dialConfig struct {
	codec       string
	market      string
	dialTimeout time.Duration
	ioTimeout   time.Duration
	session     *SessionConfig
	gains       GainProvider
	imperfect   *ImperfectParams
	noisePool   int
	identity    string
}

// Auto-resume policy for identified imperfect sessions: how many times one
// BargainImperfect call redials after a transport failure, and how long it
// waits between attempts (enough for a crashed server to come back during
// a supervised restart, without stalling a genuinely dead endpoint for
// long).
const (
	resumeAttempts = 12
	resumeBackoff  = 150 * time.Millisecond
)

// WithCodec selects the wire framing: CodecGob (default, Go-native) or
// CodecJSON (interoperable with non-Go task parties).
func WithCodec(name string) DialOption { return func(c *dialConfig) { c.codec = name } }

// WithMarket names the market to bargain in on a multi-market server. ""
// (the default) picks the server's default market.
func WithMarket(name string) DialOption { return func(c *dialConfig) { c.market = name } }

// WithDialTimeout bounds each connection attempt. 0 means no limit beyond
// the dial context's own deadline.
func WithDialTimeout(d time.Duration) DialOption { return func(c *dialConfig) { c.dialTimeout = d } }

// WithSessionTimeout bounds every read and write within a session: a
// stalled server fails the session with an ErrPeerTimeout-wrapped error
// instead of hanging it. The default is 30 seconds; <= 0 keeps the
// default.
func WithSessionTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d > 0 {
			c.ioTimeout = d
		}
	}
}

// WithSession installs the client's session template — the task party's
// private parameters (u, budget, target gain, tolerances, seed) that
// Client.Bargain merges BargainOptions into, exactly as Engine.Bargain
// does with its engine template. Typically engine.Session() of a local
// Engine built with the same dataset and seed as the server's.
func WithSession(cfg SessionConfig) DialOption {
	return func(c *dialConfig) { cp := cfg; c.session = &cp }
}

// WithGains installs the client's gain provider: the task party's side of
// Step 3, realizing the VFL course for each offered bundle. Typically
// engine.CatalogGains() of a local Engine when both parties pre-trained
// with the third party, or a live trainer in production.
func WithGains(g GainProvider) DialOption { return func(c *dialConfig) { c.gains = g } }

// WithImperfect pre-sets the imperfect-regime knobs (exploration rounds N,
// candidate-pool size, replay budget) that BargainImperfect plays with.
// Zero-valued knobs resolve to the paper defaults, so dialing without this
// option still allows imperfect sessions.
func WithImperfect(p ImperfectParams) DialOption {
	return func(c *dialConfig) { cp := p; c.imperfect = &cp }
}

// WithIdentity names the client to the server for imperfect sessions: up
// to 64 characters of [A-Za-z0-9_-]. Against a state-bound server, the
// identity keys the server-side estimator checkpoints, which buys the
// client automatic session resume — if the connection (or the server)
// dies mid-game, BargainImperfect redials with the last acknowledged
// round and both endpoints continue from their checkpoints, bit-identical
// to an uninterrupted run, instead of re-exploring from round one. The
// identity should be unique per concurrent session: two live sessions
// sharing one identity overwrite each other's checkpoints.
func WithIdentity(id string) DialOption { return func(c *dialConfig) { c.identity = id } }

// WithClientNoisePool sizes the client's pool of precomputed Paillier
// randomizers when the server settles securely: background workers keep
// r^n mod n² factors ready for the server's key, so each settled round's
// encryption costs one modular multiplication in steady state instead of
// a full-width modexp. All of the client's sessions share the pool. n = 0
// (the default) keeps the default size (secure.DefaultNoisePool); n < 0
// disables pooling, restoring the inline modexp per settlement. Inert
// against clear-settling servers. Call Client.Close to release the pool's
// workers when done.
func WithClientNoisePool(n int) DialOption {
	return func(c *dialConfig) { c.noisePool = n }
}

// Client is the task party's connection point to a market Server. A Client
// is cheap, immutable and safe for concurrent use: every Bargain call
// dials its own connection and runs one full session on it, mirroring
// Engine.Bargain's contract (options merging over the template session,
// observers, cancellation between rounds) over the network.
type Client struct {
	addr  string
	cfg   dialConfig
	hello *wire.Hello
	noise *secure.NoiseSource
}

// Dial validates the service at addr and returns a Client bound to it: it
// connects once in listing mode to fetch the server's markets, bundle
// listing, and settlement mode (failing fast on unknown markets or codec
// mismatches), then disconnects. Subsequent Bargain calls dial per
// session.
func Dial(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := dialConfig{codec: CodecGob, ioTimeout: 30 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	if err := wire.ValidateClientID(cfg.identity); err != nil {
		return nil, fmt.Errorf("vflmarket: %w", err)
	}
	c := &Client{addr: addr, cfg: cfg}
	hello, err := c.probe(ctx)
	if err != nil {
		return nil, err
	}
	c.hello = hello
	// Against a Paillier-settling server, start the shared randomizer pool
	// for its key: every session's settlement encryptions draw from it, so
	// steady-state secure settlement costs one mulmod per round.
	if hello.Secure && cfg.noisePool >= 0 && len(hello.PubN) > 0 {
		pk := secure.NewPublicKey(new(big.Int).SetBytes(hello.PubN))
		c.noise = secure.NewNoiseSource(pk, cfg.noisePool, 0, rand.Reader)
	}
	return c, nil
}

// Close releases the client's background resources (the secure-settlement
// randomizer pool, when the server settles under Paillier). Bargaining
// after Close still works — settlements fall back to inline encryption
// once the pool drains. Close is safe on every client, secure or not.
func (c *Client) Close() {
	if c.noise != nil {
		c.noise.Close()
	}
}

// probe runs one listing-only handshake.
func (c *Client) probe(ctx context.Context) (*wire.Hello, error) {
	conn, err := c.dial(ctx)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()
	_, hello, err := wire.ClientHandshake(wire.WithIOTimeout(conn, c.cfg.ioTimeout), c.cfg.codec,
		wire.ClientHello{Market: c.cfg.market, ListOnly: true})
	if err != nil {
		return nil, fmt.Errorf("vflmarket: dial %s: %w", c.addr, err)
	}
	return hello, nil
}

func (c *Client) dial(ctx context.Context) (net.Conn, error) {
	d := net.Dialer{Timeout: c.cfg.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("vflmarket: dial %s: %w", c.addr, err)
	}
	return conn, nil
}

// Market returns the resolved market name this client bargains in.
func (c *Client) Market() string { return c.hello.Market }

// Markets lists every market the server serves.
func (c *Client) Markets() []string { return append([]string(nil), c.hello.Markets...) }

// Modes lists the information regimes the server serves ("perfect", and
// "imperfect" unless the server settles under Paillier).
func (c *Client) Modes() []string { return append([]string(nil), c.hello.Modes...) }

// Listing returns the market's public bundle listing (features only; the
// reserved prices stay private to the data party).
func (c *Client) Listing() []BundleInfo { return append([]BundleInfo(nil), c.hello.Bundles...) }

// Secure reports whether the server settles under Paillier encryption; the
// client handles either mode transparently.
func (c *Client) Secure() bool { return c.hello.Secure }

// Bargain plays one bargaining session against the server with the dial
// template session (WithSession), cancellable between rounds through ctx.
// It mirrors Engine.Bargain exactly: BargainOptions merge onto the
// template the same way, observers stream the same rounds and outcome, and
// — because the networked client runs the identical game loop — the Result
// is bit-identical to the in-process one for the same seed and catalog
// (for the default strategic strategies, whose randomness is all
// task-party-side).
func (c *Client) Bargain(ctx context.Context, opts BargainOptions) (*Result, error) {
	if c.cfg.session == nil {
		return nil, fmt.Errorf("vflmarket: Bargain needs a session template: Dial with WithSession")
	}
	// Data-party behavior lives on the server: its strategy and cost model
	// come from the engine registered there, not from this call. Rejecting
	// the options beats silently bargaining against a different seller
	// than the caller asked for.
	if opts.DataGreed != DataStrategic || opts.DataCost != (CostModel{}) {
		return nil, fmt.Errorf("vflmarket: data-party options (DataGreed, DataCost) are server-side over the wire; configure them on the server's engine")
	}
	cfg := mergeBargainOptions(*c.cfg.session, opts)
	return c.BargainWith(ctx, cfg, c.cfg.gains, opts.Observers...)
}

// BargainImperfect plays one imperfect-information session against the
// server with the dial template session, mirroring Engine.BargainImperfect
// over the wire: the §3.5 estimation-based game with exploration rounds,
// online-learned ΔG estimators on both endpoints, and experience replay.
// The regime knobs come from WithImperfect (paper defaults otherwise);
// BargainOptions merge onto the template exactly as in Bargain.
//
// For mirrored engines the ImperfectResult — trace, outcome, and both MSE
// learning curves — is bit-identical to the in-process run with the same
// seed: dial with WithSession(engine.SessionImperfect()) to match
// Engine.BargainImperfect. Imperfect sessions settle in clear (the
// realized gain is the data party's training signal), so Paillier-settling
// servers refuse them.
func (c *Client) BargainImperfect(ctx context.Context, opts BargainOptions) (*ImperfectResult, error) {
	if c.cfg.session == nil {
		return nil, fmt.Errorf("vflmarket: BargainImperfect needs a session template: Dial with WithSession")
	}
	if opts.DataGreed != DataStrategic || opts.DataCost != (CostModel{}) {
		return nil, fmt.Errorf("vflmarket: data-party options (DataGreed, DataCost) are server-side over the wire; configure them on the server's engine")
	}
	var params ImperfectParams
	if c.cfg.imperfect != nil {
		params = *c.cfg.imperfect
	}
	cfg := mergeBargainOptions(*c.cfg.session, opts)
	return c.BargainImperfectWith(ctx, cfg, params, c.cfg.gains, opts.Observers...)
}

// BargainImperfectWith plays one imperfect-information session with a
// fully custom session configuration and explicit regime knobs, mirroring
// Engine.BargainImperfectWith. gains may be nil when the Client was dialed
// with WithGains.
func (c *Client) BargainImperfectWith(ctx context.Context, cfg SessionConfig, params ImperfectParams, gains GainProvider, obs ...RoundObserver) (*ImperfectResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	params = params.WithDefaults()
	// The handshake advertises the regime and the mutually known §3.5
	// parameters, so the remote data party constructs the exact
	// estimation-based seller an in-process run would.
	hs := wire.ClientHello{
		Market: c.cfg.market,
		Mode:   wire.ModeImperfect,
		Imperfect: &wire.ImperfectHello{
			Seed:              cfg.Seed,
			Target:            cfg.TargetGain,
			ExplorationRounds: params.ExplorationRounds,
			ReplaySteps:       params.ReplaySteps,
			ClientID:          c.cfg.identity,
		},
	}
	// An identified client bargains under the auto-resume policy: every
	// settled round checkpoints the buyer's estimator, and a transport
	// failure redials presenting the last acknowledged round, so the session
	// continues from its checkpoints instead of starting over. Without an
	// identity a failure surfaces immediately, as before.
	attempts := 1
	if c.cfg.identity != "" {
		attempts = resumeAttempts
	}
	var res *ImperfectResult
	var last *core.ImperfectCheckpoint
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(resumeBackoff):
			case <-ctx.Done():
				return nil, fmt.Errorf("vflmarket: bargaining abandoned: %w", context.Cause(ctx))
			}
		}
		ck := last
		if ck != nil {
			hs.Imperfect.ResumeRound = ck.Round
		} else {
			hs.Imperfect.ResumeRound = 0
		}
		err = c.withSession(ctx, gains, hs, func(ctx context.Context, tc *wire.TaskClient, codec wire.Codec, hello *wire.Hello) error {
			tc.Checkpoint = func(k *core.ImperfectCheckpoint) { last = k }
			var rerr error
			if ck != nil {
				res, rerr = tc.ResumeImperfectCodec(ctx, codec, hello, params, ck)
			} else {
				res, rerr = tc.BargainImperfectCodec(ctx, codec, hello, params)
			}
			return rerr
		}, cfg, obs)
		if err == nil {
			return res, nil
		}
		// A typed rejection is final — the server told us why, and retrying
		// replays the same refusal. Cancellation is the caller's word.
		// Everything else (transport death, busy, timeout) gets another
		// attempt.
		if errors.Is(err, wire.ErrRejected) || ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, err
}

// BargainWith plays one session with a fully custom session configuration,
// mirroring Engine.BargainWith. gains may be nil when the Client was
// dialed with WithGains.
func (c *Client) BargainWith(ctx context.Context, cfg SessionConfig, gains GainProvider, obs ...RoundObserver) (*Result, error) {
	var res *Result
	err := c.withSession(ctx, gains, wire.ClientHello{Market: c.cfg.market},
		func(ctx context.Context, tc *wire.TaskClient, codec wire.Codec, hello *wire.Hello) error {
			var err error
			res, err = tc.BargainCodec(ctx, codec, hello)
			return err
		}, cfg, obs)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// withSession dials, performs the handshake with the given ClientHello,
// and runs one session body over the negotiated codec — the connection
// lifecycle shared by both information regimes.
func (c *Client) withSession(ctx context.Context, gains GainProvider, hs wire.ClientHello,
	run func(ctx context.Context, tc *wire.TaskClient, codec wire.Codec, hello *wire.Hello) error,
	cfg SessionConfig, obs []RoundObserver) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if gains == nil {
		gains = c.cfg.gains
	}
	if gains == nil {
		return fmt.Errorf("vflmarket: bargaining needs a gain provider: Dial with WithGains")
	}
	conn, err := c.dial(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Poking the deadline on cancellation unblocks any in-flight read, so
	// the session's between-round ctx check fires promptly.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()

	tconn := wire.WithIOTimeout(conn, c.cfg.ioTimeout)
	codec, hello, err := wire.ClientHandshake(tconn, c.cfg.codec, hs)
	if err != nil {
		return wrapCtx(ctx, err)
	}
	tc := &wire.TaskClient{Session: cfg, Gains: gains, Observers: toCoreObservers(obs), Noise: c.noise}
	if err := run(ctx, tc, codec, hello); err != nil {
		return wrapCtx(ctx, err)
	}
	return nil
}

// wrapCtx prefers the context's cause when a transport error was really a
// cancellation (the deadline poke makes cancelled reads look like
// timeouts).
func wrapCtx(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return fmt.Errorf("vflmarket: bargaining abandoned: %w", context.Cause(ctx))
	}
	return err
}

func toCoreObservers(obs []RoundObserver) []core.RoundObserver {
	out := make([]core.RoundObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	return out
}
