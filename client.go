package vflmarket

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	mrand "math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/secure"
	"repro/internal/wire"
)

// DialOption configures a Client at Dial time.
type DialOption func(*dialConfig)

type dialConfig struct {
	codec       string
	market      string
	dialTimeout time.Duration
	ioTimeout   time.Duration
	session     *SessionConfig
	gains       GainProvider
	imperfect   *ImperfectParams
	noisePool   int
	identity    string
	backoff     ResumeBackoff
}

// ResumeBackoff is the auto-resume redial policy for identified imperfect
// sessions: how many times one BargainImperfect call dials after a
// transport failure or busy refusal, and how the waits between attempts
// grow. The schedule is capped exponential with jitter — wait k is
// Base·2^(k−1) clamped to Max, scaled by a uniform factor in
// [1−Jitter, 1+Jitter] so a fleet of clients evicted together (a market
// migration severs every session at once) does not redial in lockstep.
type ResumeBackoff struct {
	// Attempts is the total number of dial attempts one call makes, the
	// first included. <= 0 keeps the default (12).
	Attempts int
	// Base is the wait before the first redial. <= 0 keeps the default
	// (150ms).
	Base time.Duration
	// Max caps a single wait once the doubling reaches it. <= 0 keeps the
	// default (2s).
	Max time.Duration
	// Jitter is the ± fraction randomizing each wait. 0 keeps the default
	// (0.2); negative disables jitter (deterministic schedule, for tests).
	Jitter float64
}

func (b ResumeBackoff) withDefaults() ResumeBackoff {
	if b.Attempts <= 0 {
		b.Attempts = 12
	}
	if b.Base <= 0 {
		b.Base = 150 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.Jitter == 0 {
		b.Jitter = 0.2
	}
	if b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.Jitter > 1 {
		b.Jitter = 1
	}
	return b
}

// wait returns the sleep before redial k (k >= 1) on a defaulted policy.
func (b ResumeBackoff) wait(k int) time.Duration {
	d := b.Base
	for i := 1; i < k && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + b.Jitter*(2*mrand.Float64()-1)))
	}
	return d
}

// WithResumeBackoff sets the auto-resume redial policy for identified
// imperfect sessions, replacing the default 12-attempt, 150ms-base
// schedule. Zero-valued fields keep their defaults.
func WithResumeBackoff(b ResumeBackoff) DialOption {
	return func(c *dialConfig) { c.backoff = b }
}

// WithCodec selects the wire framing: CodecGob (default, Go-native) or
// CodecJSON (interoperable with non-Go task parties).
func WithCodec(name string) DialOption { return func(c *dialConfig) { c.codec = name } }

// WithMarket names the market to bargain in on a multi-market server. ""
// (the default) picks the server's default market.
func WithMarket(name string) DialOption { return func(c *dialConfig) { c.market = name } }

// WithDialTimeout bounds each connection attempt. 0 means no limit beyond
// the dial context's own deadline.
func WithDialTimeout(d time.Duration) DialOption { return func(c *dialConfig) { c.dialTimeout = d } }

// WithSessionTimeout bounds every read and write within a session: a
// stalled server fails the session with an ErrPeerTimeout-wrapped error
// instead of hanging it. The default is 30 seconds; <= 0 keeps the
// default.
func WithSessionTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d > 0 {
			c.ioTimeout = d
		}
	}
}

// WithSession installs the client's session template — the task party's
// private parameters (u, budget, target gain, tolerances, seed) that
// Client.Bargain merges BargainOptions into, exactly as Engine.Bargain
// does with its engine template. Typically engine.Session() of a local
// Engine built with the same dataset and seed as the server's.
func WithSession(cfg SessionConfig) DialOption {
	return func(c *dialConfig) { cp := cfg; c.session = &cp }
}

// WithGains installs the client's gain provider: the task party's side of
// Step 3, realizing the VFL course for each offered bundle. Typically
// engine.CatalogGains() of a local Engine when both parties pre-trained
// with the third party, or a live trainer in production.
func WithGains(g GainProvider) DialOption { return func(c *dialConfig) { c.gains = g } }

// WithImperfect pre-sets the imperfect-regime knobs (exploration rounds N,
// candidate-pool size, replay budget) that BargainImperfect plays with.
// Zero-valued knobs resolve to the paper defaults, so dialing without this
// option still allows imperfect sessions.
func WithImperfect(p ImperfectParams) DialOption {
	return func(c *dialConfig) { cp := p; c.imperfect = &cp }
}

// WithIdentity names the client to the server for imperfect sessions: up
// to 64 characters of [A-Za-z0-9_-]. Against a state-bound server, the
// identity keys the server-side estimator checkpoints, which buys the
// client automatic session resume — if the connection (or the server)
// dies mid-game, BargainImperfect redials with the last acknowledged
// round and both endpoints continue from their checkpoints, bit-identical
// to an uninterrupted run, instead of re-exploring from round one. The
// identity should be unique per concurrent session: two live sessions
// sharing one identity overwrite each other's checkpoints.
func WithIdentity(id string) DialOption { return func(c *dialConfig) { c.identity = id } }

// WithClientNoisePool sizes the client's pool of precomputed Paillier
// randomizers when the server settles securely: background workers keep
// r^n mod n² factors ready for the server's key, so each settled round's
// encryption costs one modular multiplication in steady state instead of
// a full-width modexp. All of the client's sessions share the pool. n = 0
// (the default) keeps the default size (secure.DefaultNoisePool); n < 0
// disables pooling, restoring the inline modexp per settlement. Inert
// against clear-settling servers. Call Client.Close to release the pool's
// workers when done.
func WithClientNoisePool(n int) DialOption {
	return func(c *dialConfig) { c.noisePool = n }
}

// Client is the task party's connection point to a market Server. A Client
// is cheap, immutable and safe for concurrent use: every Bargain call
// dials its own connection and runs one full session on it, mirroring
// Engine.Bargain's contract (options merging over the template session,
// observers, cancellation between rounds) over the network.
type Client struct {
	cfg   dialConfig
	hello *wire.Hello
	noise *secure.NoiseSource

	// mu guards addr: against a sharded fabric the client learns the
	// market's current home from redirect answers and re-points itself, so
	// concurrent Bargain calls must read a coherent address.
	mu   sync.Mutex
	addr string
}

// Addr returns the address the client currently dials — the Dial address
// until a shard redirect re-points it at the market's owner.
func (c *Client) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

func (c *Client) setAddr(addr string) {
	c.mu.Lock()
	c.addr = addr
	c.mu.Unlock()
}

// Dial validates the service at addr and returns a Client bound to it: it
// connects once in listing mode to fetch the server's markets, bundle
// listing, and settlement mode (failing fast on unknown markets or codec
// mismatches), then disconnects. Subsequent Bargain calls dial per
// session.
func Dial(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := dialConfig{codec: CodecGob, ioTimeout: 30 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	if err := wire.ValidateClientID(cfg.identity); err != nil {
		return nil, fmt.Errorf("vflmarket: %w", err)
	}
	c := &Client{addr: addr, cfg: cfg}
	hello, err := c.probe(ctx)
	if err != nil {
		return nil, err
	}
	c.hello = hello
	// Against a Paillier-settling server, start the shared randomizer pool
	// for its key: every session's settlement encryptions draw from it, so
	// steady-state secure settlement costs one mulmod per round.
	if hello.Secure && cfg.noisePool >= 0 && len(hello.PubN) > 0 {
		pk := secure.NewPublicKey(new(big.Int).SetBytes(hello.PubN))
		c.noise = secure.NewNoiseSource(pk, cfg.noisePool, 0, rand.Reader)
	}
	return c, nil
}

// Close releases the client's background resources (the secure-settlement
// randomizer pool, when the server settles under Paillier). Bargaining
// after Close still works — settlements fall back to inline encryption
// once the pool drains. Close is safe on every client, secure or not.
func (c *Client) Close() {
	if c.noise != nil {
		c.noise.Close()
	}
}

// probe runs one listing-only handshake.
func (c *Client) probe(ctx context.Context) (*wire.Hello, error) {
	conn, _, hello, err := c.connect(ctx, wire.ClientHello{Market: c.cfg.market, ListOnly: true})
	if err != nil {
		return nil, err
	}
	conn.Close()
	return hello, nil
}

// maxRedirectHops bounds one connection attempt's redirect chain. A
// healthy fabric answers in one hop; the bound is a loop guard against a
// misconfigured directory that points shards at each other.
const maxRedirectHops = 8

// connect dials the client's current address and performs the handshake,
// transparently following shard redirects: a fabric shard that does not
// own the requested market answers with its owner's address, and the
// client re-dials there and remembers the address for subsequent sessions.
func (c *Client) connect(ctx context.Context, hs wire.ClientHello) (net.Conn, wire.Codec, *wire.Hello, error) {
	addr := c.Addr()
	for hop := 0; ; hop++ {
		conn, err := c.dialAddr(ctx, addr)
		if err != nil {
			return nil, nil, nil, err
		}
		// Poking the deadline on cancellation unblocks the handshake read.
		stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
		codec, hello, err := wire.ClientHandshake(wire.WithIOTimeout(conn, c.cfg.ioTimeout), c.cfg.codec, hs)
		stop()
		if err == nil {
			c.setAddr(addr)
			return conn, codec, hello, nil
		}
		conn.Close()
		var rd *wire.RedirectError
		if !errors.As(err, &rd) || rd.Addr == "" || hop >= maxRedirectHops {
			return nil, nil, nil, err
		}
		addr = rd.Addr
	}
}

func (c *Client) dialAddr(ctx context.Context, addr string) (net.Conn, error) {
	d := net.Dialer{Timeout: c.cfg.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vflmarket: dial %s: %w", addr, err)
	}
	return conn, nil
}

// Stats fetches the server's admin metrics snapshot — server counters,
// per-market counters, and the shard-map epoch on fabric shards — over a
// one-shot stats-only handshake. The fabric's rebalancer reads shards
// exactly this way.
func (c *Client) Stats(ctx context.Context) (*StatsReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	conn, err := c.dialAddr(ctx, c.Addr())
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()
	rep, err := wire.FetchStats(conn, c.cfg.codec, c.cfg.ioTimeout)
	if err != nil {
		return nil, wrapCtx(ctx, err)
	}
	return rep, nil
}

// Market returns the resolved market name this client bargains in.
func (c *Client) Market() string { return c.hello.Market }

// Markets lists every market the server serves.
func (c *Client) Markets() []string { return append([]string(nil), c.hello.Markets...) }

// Modes lists the information regimes the server serves ("perfect", and
// "imperfect" unless the server settles under Paillier).
func (c *Client) Modes() []string { return append([]string(nil), c.hello.Modes...) }

// Listing returns the market's public bundle listing (features only; the
// reserved prices stay private to the data party).
func (c *Client) Listing() []BundleInfo { return append([]BundleInfo(nil), c.hello.Bundles...) }

// Secure reports whether the server settles under Paillier encryption; the
// client handles either mode transparently.
func (c *Client) Secure() bool { return c.hello.Secure }

// Bargain plays one bargaining session against the server with the dial
// template session (WithSession), cancellable between rounds through ctx.
// It mirrors Engine.Bargain exactly: BargainOptions merge onto the
// template the same way, observers stream the same rounds and outcome, and
// — because the networked client runs the identical game loop — the Result
// is bit-identical to the in-process one for the same seed and catalog
// (for the default strategic strategies, whose randomness is all
// task-party-side).
func (c *Client) Bargain(ctx context.Context, opts BargainOptions) (*Result, error) {
	if c.cfg.session == nil {
		return nil, fmt.Errorf("vflmarket: Bargain needs a session template: Dial with WithSession")
	}
	// Data-party behavior lives on the server: its strategy and cost model
	// come from the engine registered there, not from this call. Rejecting
	// the options beats silently bargaining against a different seller
	// than the caller asked for.
	if opts.DataGreed != DataStrategic || opts.DataCost != (CostModel{}) {
		return nil, fmt.Errorf("vflmarket: data-party options (DataGreed, DataCost) are server-side over the wire; configure them on the server's engine")
	}
	cfg := mergeBargainOptions(*c.cfg.session, opts)
	return c.BargainWith(ctx, cfg, c.cfg.gains, opts.Observers...)
}

// BargainImperfect plays one imperfect-information session against the
// server with the dial template session, mirroring Engine.BargainImperfect
// over the wire: the §3.5 estimation-based game with exploration rounds,
// online-learned ΔG estimators on both endpoints, and experience replay.
// The regime knobs come from WithImperfect (paper defaults otherwise);
// BargainOptions merge onto the template exactly as in Bargain.
//
// For mirrored engines the ImperfectResult — trace, outcome, and both MSE
// learning curves — is bit-identical to the in-process run with the same
// seed: dial with WithSession(engine.SessionImperfect()) to match
// Engine.BargainImperfect. Imperfect sessions settle in clear (the
// realized gain is the data party's training signal), so Paillier-settling
// servers refuse them.
func (c *Client) BargainImperfect(ctx context.Context, opts BargainOptions) (*ImperfectResult, error) {
	if c.cfg.session == nil {
		return nil, fmt.Errorf("vflmarket: BargainImperfect needs a session template: Dial with WithSession")
	}
	if opts.DataGreed != DataStrategic || opts.DataCost != (CostModel{}) {
		return nil, fmt.Errorf("vflmarket: data-party options (DataGreed, DataCost) are server-side over the wire; configure them on the server's engine")
	}
	var params ImperfectParams
	if c.cfg.imperfect != nil {
		params = *c.cfg.imperfect
	}
	cfg := mergeBargainOptions(*c.cfg.session, opts)
	return c.BargainImperfectWith(ctx, cfg, params, c.cfg.gains, opts.Observers...)
}

// BargainImperfectWith plays one imperfect-information session with a
// fully custom session configuration and explicit regime knobs, mirroring
// Engine.BargainImperfectWith. gains may be nil when the Client was dialed
// with WithGains.
func (c *Client) BargainImperfectWith(ctx context.Context, cfg SessionConfig, params ImperfectParams, gains GainProvider, obs ...RoundObserver) (*ImperfectResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	params = params.WithDefaults()
	// The handshake advertises the regime and the mutually known §3.5
	// parameters, so the remote data party constructs the exact
	// estimation-based seller an in-process run would.
	hs := wire.ClientHello{
		Market: c.cfg.market,
		Mode:   wire.ModeImperfect,
		Imperfect: &wire.ImperfectHello{
			Seed:              cfg.Seed,
			Target:            cfg.TargetGain,
			ExplorationRounds: params.ExplorationRounds,
			ReplaySteps:       params.ReplaySteps,
			ClientID:          c.cfg.identity,
		},
	}
	// An identified client bargains under the auto-resume policy: every
	// settled round checkpoints the buyer's estimator, and a transport
	// failure redials presenting the last acknowledged round, so the session
	// continues from its checkpoints instead of starting over. Without an
	// identity a failure surfaces immediately, as before. The waits between
	// redials follow the (configurable) capped-exponential schedule.
	bo := c.cfg.backoff.withDefaults()
	attempts := 1
	if c.cfg.identity != "" {
		attempts = bo.Attempts
	}
	var res *ImperfectResult
	var last *core.ImperfectCheckpoint
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(bo.wait(attempt)):
			case <-ctx.Done():
				return nil, fmt.Errorf("vflmarket: bargaining abandoned: %w", context.Cause(ctx))
			}
		}
		ck := last
		if ck != nil {
			hs.Imperfect.ResumeRound = ck.Round
		} else {
			hs.Imperfect.ResumeRound = 0
		}
		err = c.withSession(ctx, gains, hs, func(ctx context.Context, tc *wire.TaskClient, codec wire.Codec, hello *wire.Hello) error {
			tc.Checkpoint = func(k *core.ImperfectCheckpoint) { last = k }
			var rerr error
			if ck != nil {
				res, rerr = tc.ResumeImperfectCodec(ctx, codec, hello, params, ck)
			} else {
				res, rerr = tc.BargainImperfectCodec(ctx, codec, hello, params)
			}
			return rerr
		}, cfg, obs)
		if err == nil {
			return res, nil
		}
		// A typed rejection is final — the server told us why, and retrying
		// replays the same refusal. Cancellation is the caller's word.
		// Everything else (transport death, busy, timeout) gets another
		// attempt.
		if errors.Is(err, wire.ErrRejected) || ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, err
}

// BargainWith plays one session with a fully custom session configuration,
// mirroring Engine.BargainWith. gains may be nil when the Client was
// dialed with WithGains.
func (c *Client) BargainWith(ctx context.Context, cfg SessionConfig, gains GainProvider, obs ...RoundObserver) (*Result, error) {
	var res *Result
	err := c.withSession(ctx, gains, wire.ClientHello{Market: c.cfg.market},
		func(ctx context.Context, tc *wire.TaskClient, codec wire.Codec, hello *wire.Hello) error {
			var err error
			res, err = tc.BargainCodec(ctx, codec, hello)
			return err
		}, cfg, obs)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// withSession dials, performs the handshake with the given ClientHello,
// and runs one session body over the negotiated codec — the connection
// lifecycle shared by both information regimes.
func (c *Client) withSession(ctx context.Context, gains GainProvider, hs wire.ClientHello,
	run func(ctx context.Context, tc *wire.TaskClient, codec wire.Codec, hello *wire.Hello) error,
	cfg SessionConfig, obs []RoundObserver) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if gains == nil {
		gains = c.cfg.gains
	}
	if gains == nil {
		return fmt.Errorf("vflmarket: bargaining needs a gain provider: Dial with WithGains")
	}
	conn, codec, hello, err := c.connect(ctx, hs)
	if err != nil {
		return wrapCtx(ctx, err)
	}
	defer conn.Close()
	// Poking the deadline on cancellation unblocks any in-flight read, so
	// the session's between-round ctx check fires promptly.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	defer stop()

	tc := &wire.TaskClient{Session: cfg, Gains: gains, Observers: toCoreObservers(obs), Noise: c.noise}
	if err := run(ctx, tc, codec, hello); err != nil {
		return wrapCtx(ctx, err)
	}
	return nil
}

// wrapCtx prefers the context's cause when a transport error was really a
// cancellation (the deadline poke makes cancelled reads look like
// timeouts).
func wrapCtx(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return fmt.Errorf("vflmarket: bargaining abandoned: %w", context.Cause(ctx))
	}
	return err
}

func toCoreObservers(obs []RoundObserver) []core.RoundObserver {
	out := make([]core.RoundObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	return out
}
