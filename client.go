package vflmarket

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/secure"
	"repro/internal/wire"
)

// DialOption configures a Client at Dial time.
type DialOption func(*dialConfig)

type dialConfig struct {
	codec        string
	market       string
	dialTimeout  time.Duration
	ioTimeout    time.Duration
	session      *SessionConfig
	gains        GainProvider
	imperfect    *ImperfectParams
	noisePool    int
	identity     string
	backoff      RetryPolicy
	breaker      BreakerPolicy
	fallbacks    []string
	connsPerAddr int
}

// WithRetryPolicy sets the client's shared retry schedule (see
// RetryPolicy): it paces the initial Dial, Stats reads, failover address
// rotation, session retries, and the imperfect-session resume loop.
// Zero-valued fields keep their defaults.
func WithRetryPolicy(p RetryPolicy) DialOption {
	return func(c *dialConfig) { c.backoff = p }
}

// WithResumeBackoff is the historical name of WithRetryPolicy, kept for
// callers configuring the policy for the resume loop it originally paced.
func WithResumeBackoff(b ResumeBackoff) DialOption { return WithRetryPolicy(b) }

// WithCircuitBreaker tunes the per-address circuit breakers guarding the
// connection pool: after Threshold consecutive dial failures an address
// is suppressed (dials fast-fail with ErrCircuitOpen) until the Cooldown
// admits a half-open probe. Zero-valued fields keep the defaults
// (threshold 5, cooldown 1s); Disabled turns the breakers off.
func WithCircuitBreaker(p BreakerPolicy) DialOption {
	return func(c *dialConfig) { c.breaker = p }
}

// WithFallbackAddrs seeds the client with additional server addresses to
// rotate to when its current address stops answering — on a sharded
// fabric, any live shard redirects the client to its market's owner, so
// listing every shard makes the client survive the death of the one it
// happens to be pointed at. Redirect targets learned at runtime join the
// same rotation set automatically.
func WithFallbackAddrs(addrs ...string) DialOption {
	return func(c *dialConfig) { c.fallbacks = append(c.fallbacks, addrs...) }
}

// WithCodec selects the wire framing: CodecGob (default, Go-native) or
// CodecJSON (interoperable with non-Go task parties).
func WithCodec(name string) DialOption { return func(c *dialConfig) { c.codec = name } }

// WithMarket names the market to bargain in on a multi-market server. ""
// (the default) picks the server's default market.
func WithMarket(name string) DialOption { return func(c *dialConfig) { c.market = name } }

// WithDialTimeout bounds each connection attempt. 0 means no limit beyond
// the dial context's own deadline.
func WithDialTimeout(d time.Duration) DialOption { return func(c *dialConfig) { c.dialTimeout = d } }

// WithSessionTimeout bounds every read and write within a session: a
// stalled server fails the session with an ErrPeerTimeout-wrapped error
// instead of hanging it. On the multiplexed wire the bound is a
// per-session receive timer, so one stalled session cannot stall its
// siblings on the same connection. The default is 30 seconds; <= 0 keeps
// the default.
func WithSessionTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d > 0 {
			c.ioTimeout = d
		}
	}
}

// WithConnsPerAddr sets how many warm multiplexed connections the client
// keeps per server address. Sessions are spread across the pool
// least-loaded-first, and the pool only grows when every pooled connection
// is in use up to the cap. 1 (the default) funnels all concurrent sessions
// through a single connection; raise it when many concurrent sessions
// saturate one connection's framing throughput. n <= 0 keeps the default.
func WithConnsPerAddr(n int) DialOption {
	return func(c *dialConfig) {
		if n > 0 {
			c.connsPerAddr = n
		}
	}
}

// WithSession installs the client's session template — the task party's
// private parameters (u, budget, target gain, tolerances, seed) that
// Client.Bargain merges BargainOptions into, exactly as Engine.Bargain
// does with its engine template. Typically engine.Session() of a local
// Engine built with the same dataset and seed as the server's.
func WithSession(cfg SessionConfig) DialOption {
	return func(c *dialConfig) { cp := cfg; c.session = &cp }
}

// WithGains installs the client's gain provider: the task party's side of
// Step 3, realizing the VFL course for each offered bundle. Typically
// engine.CatalogGains() of a local Engine when both parties pre-trained
// with the third party, or a live trainer in production.
func WithGains(g GainProvider) DialOption { return func(c *dialConfig) { c.gains = g } }

// WithImperfect pre-sets the imperfect-regime knobs (exploration rounds N,
// candidate-pool size, replay budget) that BargainImperfect plays with.
// Zero-valued knobs resolve to the paper defaults, so dialing without this
// option still allows imperfect sessions.
func WithImperfect(p ImperfectParams) DialOption {
	return func(c *dialConfig) { cp := p; c.imperfect = &cp }
}

// WithIdentity names the client to the server for imperfect sessions: up
// to 64 characters of [A-Za-z0-9_-]. Against a state-bound server, the
// identity keys the server-side estimator checkpoints, which buys the
// client automatic session resume — if the connection (or the server)
// dies mid-game, BargainImperfect retries with the last acknowledged
// round and both endpoints continue from their checkpoints, bit-identical
// to an uninterrupted run, instead of re-exploring from round one. The
// identity should be unique per concurrent session: two live sessions
// sharing one identity overwrite each other's checkpoints.
// BargainImperfectBatch derives a distinct identity per spec ("<id>-<i>")
// for exactly that reason.
func WithIdentity(id string) DialOption { return func(c *dialConfig) { c.identity = id } }

// WithClientNoisePool sizes the client's pool of precomputed Paillier
// randomizers when the server settles securely: background workers keep
// r^n mod n² factors ready for the server's key, so each settled round's
// encryption costs one modular multiplication in steady state instead of
// a full-width modexp. All of the client's sessions share the pool. n = 0
// (the default) keeps the default size (secure.DefaultNoisePool); n < 0
// disables pooling, restoring the inline modexp per settlement. Inert
// against clear-settling servers. Call Client.Close to release the pool's
// workers when done.
func WithClientNoisePool(n int) DialOption {
	return func(c *dialConfig) { c.noisePool = n }
}

// Client is the task party's connection point to a market Server. A Client
// is safe for concurrent use: it keeps a pool of warm multiplexed
// connections (one per server address by default, WithConnsPerAddr for
// more) and every Bargain call opens one session stream over a pooled
// connection — dialing and handshaking happen once per connection, not per
// session. The session itself mirrors Engine.Bargain's contract exactly
// (options merging over the template session, observers, cancellation
// between rounds) over the network.
type Client struct {
	cfg   dialConfig
	hello *wire.Hello
	noise *secure.NoiseSource

	// mu guards addr and the connection pool: against a sharded fabric the
	// client learns the market's current home from redirect answers and
	// re-points itself, so concurrent Bargain calls must read a coherent
	// address and share the warm connections at it.
	mu       sync.Mutex
	addr     string
	pool     map[string][]*wire.MuxConn
	pending  map[string]int // in-flight dials per addr, so racing callers don't overshoot the pool cap
	breakers map[string]*breaker
	known    []string // every address seen (dial, fallbacks, redirects), in discovery order — the failover rotation set
}

// noteAddr adds addr to the failover rotation set, once.
func (c *Client) noteAddr(addr string) {
	if addr == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range c.known {
		if a == addr {
			return
		}
	}
	c.known = append(c.known, addr)
}

// nextAddr returns the first known address not yet tried this attempt.
func (c *Client) nextAddr(tried map[string]bool) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range c.known {
		if !tried[a] {
			return a, true
		}
	}
	return "", false
}

// Addr returns the address the client currently dials — the Dial address
// until a shard redirect re-points it at the market's owner.
func (c *Client) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

func (c *Client) setAddr(addr string) {
	c.mu.Lock()
	c.addr = addr
	c.mu.Unlock()
}

// Dial connects to the service at addr and returns a Client bound to it:
// one TCP connection, whose multiplexed handshake doubles as the listing
// probe — the server's markets, bundle listing, and settlement mode come
// back on the connection-level Hello (failing fast on unknown markets or
// codec mismatches), and the handshaked connection stays warm in the
// client's pool for the sessions that follow.
func Dial(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := dialConfig{codec: CodecGob, ioTimeout: 30 * time.Second, connsPerAddr: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if err := wire.ValidateClientID(cfg.identity); err != nil {
		return nil, fmt.Errorf("vflmarket: %w", err)
	}
	c := &Client{
		addr:     addr,
		cfg:      cfg,
		pool:     make(map[string][]*wire.MuxConn),
		pending:  make(map[string]int),
		breakers: make(map[string]*breaker),
	}
	c.noteAddr(addr)
	for _, a := range cfg.fallbacks {
		c.noteAddr(a)
	}
	// The initial connect retries transport-class failures (a shard mid
	// restart, a connection reset in the handshake) on the shared policy,
	// capped tighter than a session's resume loop — a Dial against a truly
	// dead fleet should fail in a bounded handful of attempts. Busy and
	// rejection answers come from a live server and surface immediately.
	bo := cfg.backoff.withDefaults()
	attempts := bo.Attempts
	if attempts > 3 {
		attempts = 3
	}
	var mc *wire.MuxConn
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(bo.wait(attempt)):
			case <-ctx.Done():
				return nil, fmt.Errorf("vflmarket: dial abandoned: %w", context.Cause(ctx))
			}
		}
		mc, err = c.connectMux(ctx)
		if err == nil || !transportErr(err) || ctx.Err() != nil {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	c.hello = mc.Hello()
	// Against a Paillier-settling server, start the shared randomizer pool
	// for its key: every session's settlement encryptions draw from it, so
	// steady-state secure settlement costs one mulmod per round.
	if c.hello.Secure && cfg.noisePool >= 0 && len(c.hello.PubN) > 0 {
		pk := secure.NewPublicKey(new(big.Int).SetBytes(c.hello.PubN))
		c.noise = secure.NewNoiseSource(pk, cfg.noisePool, 0, rand.Reader)
	}
	return c, nil
}

// Close releases the client's background resources: the warm connection
// pool and the secure-settlement randomizer pool (when the server settles
// under Paillier). Bargaining after Close still works — the next session
// dials and pools a fresh connection — so Close is safe to call between
// bursts as well as at the end.
func (c *Client) Close() {
	c.mu.Lock()
	var conns []*wire.MuxConn
	for _, l := range c.pool {
		conns = append(conns, l...)
	}
	c.pool = make(map[string][]*wire.MuxConn)
	c.mu.Unlock()
	for _, mc := range conns {
		mc.Close()
	}
	if c.noise != nil {
		c.noise.Close()
	}
}

// maxRedirectHops bounds one connection attempt's redirect chain. A
// healthy fabric answers in one hop; the bound is a loop guard against a
// misconfigured directory that points shards at each other.
const maxRedirectHops = 8

// dialMux dials addr and performs the multiplexed handshake, carrying the
// client's market as the connection-level routing hint. The server's
// Hello (the listing probe) is retained on the returned connection.
func (c *Client) dialMux(ctx context.Context, addr string) (*wire.MuxConn, error) {
	d := net.Dialer{Timeout: c.cfg.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vflmarket: dial %s: %w", addr, err)
	}
	// Poking the deadline on cancellation unblocks the handshake read.
	stop := context.AfterFunc(ctx, func() { conn.SetDeadline(time.Now()) })
	mc, _, err := wire.OpenMux(conn, c.cfg.codec, wire.ClientHello{Market: c.cfg.market, ListOnly: true}, c.cfg.ioTimeout)
	stop()
	if err != nil {
		conn.Close()
		return nil, err
	}
	return mc, nil
}

// muxFor returns a live pooled connection to addr, pruning dead ones and
// dialing a fresh connection while the pool is under its per-address cap.
// At the cap, sessions pile onto the least-loaded pooled connection. Every
// dial passes through addr's circuit breaker: a tripped breaker fast-fails
// with ErrCircuitOpen instead of hammering a dead address — unless a live
// pooled connection exists, which is always preferred anyway.
func (c *Client) muxFor(ctx context.Context, addr string) (*wire.MuxConn, error) {
	c.mu.Lock()
	live := c.pool[addr][:0]
	for _, mc := range c.pool[addr] {
		if mc.Err() != nil {
			continue // fail() already closed the socket
		}
		live = append(live, mc)
	}
	c.pool[addr] = live
	best := func() *wire.MuxConn {
		b := live[0]
		for _, mc := range live[1:] {
			if mc.Active() < b.Active() {
				b = mc
			}
		}
		return b
	}
	if len(live) > 0 && len(live)+c.pending[addr] >= c.cfg.connsPerAddr {
		mc := best()
		c.mu.Unlock()
		return mc, nil
	}
	c.mu.Unlock()

	br := c.breakerFor(addr)
	if berr := br.allow(); berr != nil {
		c.mu.Lock()
		defer c.mu.Unlock()
		if len(live) > 0 {
			return best(), nil // suppressed dial, but a warm conn still flows
		}
		return nil, fmt.Errorf("%w (%s)", berr, addr)
	}

	c.mu.Lock()
	c.pending[addr]++
	c.mu.Unlock()

	mc, err := c.dialMux(ctx, addr)

	if err == nil {
		br.success()
	} else if ctx.Err() == nil && wire.IsTransportError(err) {
		// Only pipe-level failures count against the address: redirects,
		// busy, and rejection envelopes are a live server answering, and a
		// cancelled dial says nothing about its health.
		br.failure()
	} else {
		// A non-transport failure (cancellation, redirect, busy…) neither
		// opens nor closes the breaker, but it must release a claimed
		// half-open probe slot so the next dial can still probe.
		br.releaseProbe()
	}
	c.mu.Lock()
	c.pending[addr]--
	if err == nil {
		c.pool[addr] = append(c.pool[addr], mc)
	}
	c.mu.Unlock()
	return mc, err
}

// dropConn evicts a dead connection from the pool and closes it.
func (c *Client) dropConn(dead *wire.MuxConn) {
	c.mu.Lock()
	for addr, conns := range c.pool {
		for i, mc := range conns {
			if mc == dead {
				c.pool[addr] = append(conns[:i], conns[i+1:]...)
				break
			}
		}
	}
	c.mu.Unlock()
	dead.Close()
}

// connectMux returns a warm connection to the client's current address,
// transparently following shard redirects at the connection level: a
// fabric shard that does not own the client's market answers the mux
// handshake with its owner's address, and the client re-dials there and
// remembers the address — populating the pool at the market's true home.
//
// A dead address does not end the attempt: the client rotates through its
// known addresses (the dial address, WithFallbackAddrs seeds, and every
// redirect target it has seen), each tried at most once per call. On a
// fabric this is shard failover from the client's seat — any surviving
// shard routes it to the market's new owner.
func (c *Client) connectMux(ctx context.Context) (*wire.MuxConn, error) {
	tried := make(map[string]bool)
	redirects := 0
	for {
		addr := c.Addr()
		mc, err := c.muxFor(ctx, addr)
		if err == nil {
			return mc, nil
		}
		var rd *wire.RedirectError
		if errors.As(err, &rd) && rd.Addr != "" {
			if redirects >= maxRedirectHops {
				return nil, err
			}
			redirects++
			c.noteAddr(rd.Addr)
			c.setAddr(rd.Addr)
			continue
		}
		// Busy and rejection are a live server's word — surface them. So is
		// the caller's cancellation.
		if !transportErr(err) || ctx.Err() != nil {
			return nil, err
		}
		tried[addr] = true
		next, ok := c.nextAddr(tried)
		if !ok {
			return nil, err
		}
		c.setAddr(next)
	}
}

// openSession opens one session stream over a pooled connection, following
// session-level redirects (the market migrated after the connection
// handshook) and retrying once on a fresh connection when a pooled one
// turns out to have died since it was last used.
func (c *Client) openSession(ctx context.Context, hs wire.ClientHello) (*wire.MuxSession, *wire.Hello, error) {
	redialed := false
	for hop := 0; ; {
		mc, err := c.connectMux(ctx)
		if err != nil {
			return nil, nil, err
		}
		s, hello, err := mc.Open(ctx, hs, c.cfg.ioTimeout)
		if err == nil {
			return s, hello, nil
		}
		if mc.Err() != nil && !redialed {
			// The pooled connection died idle (server restart, network cut);
			// one retry lands on a freshly dialed replacement.
			redialed = true
			c.dropConn(mc)
			continue
		}
		var rd *wire.RedirectError
		if errors.As(err, &rd) && rd.Addr != "" && hop < maxRedirectHops {
			hop++
			c.noteAddr(rd.Addr)
			c.setAddr(rd.Addr)
			continue
		}
		return nil, nil, err
	}
}

// Stats fetches the server's admin metrics snapshot — server counters,
// per-market counters, and the shard-map epoch on fabric shards — over a
// stats stream on a pooled connection; no extra dial. The fabric's
// rebalancer reads shards the same way on its own fresh connections.
//
// The per-attempt receive timeout is derived from ctx: a ctx deadline
// tighter than the session timeout bounds each attempt, so a probe
// against a stalled shard honors the caller's budget instead of the raw
// connection deadline. Transport-dead connections are retried on the
// shared policy, capped at three attempts.
func (c *Client) Stats(ctx context.Context) (*StatsReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := c.cfg.ioTimeout
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); timeout <= 0 || remain < timeout {
			timeout = remain
		}
	}
	if timeout < 0 {
		timeout = time.Nanosecond // expired budget: fail fast, not hang
	}
	bo := c.cfg.backoff.withDefaults()
	attempts := bo.Attempts
	if attempts > 3 {
		attempts = 3
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(bo.wait(attempt)):
			case <-ctx.Done():
				return nil, wrapCtx(ctx, lastErr)
			}
		}
		mc, err := c.connectMux(ctx)
		if err != nil {
			lastErr = err
			if transportErr(err) && ctx.Err() == nil {
				continue
			}
			return nil, wrapCtx(ctx, err)
		}
		rep, err := mc.Stats(ctx, timeout)
		if err == nil {
			return rep, nil
		}
		lastErr = err
		if mc.Err() != nil {
			c.dropConn(mc)
		}
		if !transportErr(err) || ctx.Err() != nil {
			return nil, wrapCtx(ctx, err)
		}
	}
	return nil, wrapCtx(ctx, lastErr)
}

// Market returns the resolved market name this client bargains in.
func (c *Client) Market() string { return c.hello.Market }

// Markets lists every market the server serves.
func (c *Client) Markets() []string { return append([]string(nil), c.hello.Markets...) }

// Modes lists the information regimes the server serves ("perfect", and
// "imperfect" unless the server settles under Paillier).
func (c *Client) Modes() []string { return append([]string(nil), c.hello.Modes...) }

// Listing returns the market's public bundle listing (features only; the
// reserved prices stay private to the data party).
func (c *Client) Listing() []BundleInfo { return append([]BundleInfo(nil), c.hello.Bundles...) }

// Secure reports whether the server settles under Paillier encryption; the
// client handles either mode transparently.
func (c *Client) Secure() bool { return c.hello.Secure }

// Bargain plays one bargaining session against the server with the dial
// template session (WithSession), cancellable between rounds through ctx.
// It mirrors Engine.Bargain exactly: BargainOptions merge onto the
// template the same way, observers stream the same rounds and outcome, and
// — because the networked client runs the identical game loop — the Result
// is bit-identical to the in-process one for the same seed and catalog
// (for the default strategic strategies, whose randomness is all
// task-party-side).
func (c *Client) Bargain(ctx context.Context, opts BargainOptions) (*Result, error) {
	if c.cfg.session == nil {
		return nil, fmt.Errorf("vflmarket: Bargain needs a session template: Dial with WithSession")
	}
	// Data-party behavior lives on the server: its strategy and cost model
	// come from the engine registered there, not from this call. Rejecting
	// the options beats silently bargaining against a different seller
	// than the caller asked for.
	if opts.DataGreed != DataStrategic || opts.DataCost != (CostModel{}) {
		return nil, fmt.Errorf("vflmarket: data-party options (DataGreed, DataCost) are server-side over the wire; configure them on the server's engine")
	}
	cfg := mergeBargainOptions(*c.cfg.session, opts)
	return c.BargainWith(ctx, cfg, c.cfg.gains, opts.Observers...)
}

// BargainImperfect plays one imperfect-information session against the
// server with the dial template session, mirroring Engine.BargainImperfect
// over the wire: the §3.5 estimation-based game with exploration rounds,
// online-learned ΔG estimators on both endpoints, and experience replay.
// The regime knobs come from WithImperfect (paper defaults otherwise);
// BargainOptions merge onto the template exactly as in Bargain.
//
// For mirrored engines the ImperfectResult — trace, outcome, and both MSE
// learning curves — is bit-identical to the in-process run with the same
// seed: dial with WithSession(engine.SessionImperfect()) to match
// Engine.BargainImperfect. Imperfect sessions settle in clear (the
// realized gain is the data party's training signal), so Paillier-settling
// servers refuse them.
func (c *Client) BargainImperfect(ctx context.Context, opts BargainOptions) (*ImperfectResult, error) {
	if c.cfg.session == nil {
		return nil, fmt.Errorf("vflmarket: BargainImperfect needs a session template: Dial with WithSession")
	}
	if opts.DataGreed != DataStrategic || opts.DataCost != (CostModel{}) {
		return nil, fmt.Errorf("vflmarket: data-party options (DataGreed, DataCost) are server-side over the wire; configure them on the server's engine")
	}
	var params ImperfectParams
	if c.cfg.imperfect != nil {
		params = *c.cfg.imperfect
	}
	cfg := mergeBargainOptions(*c.cfg.session, opts)
	return c.BargainImperfectWith(ctx, cfg, params, c.cfg.gains, opts.Observers...)
}

// BargainImperfectWith plays one imperfect-information session with a
// fully custom session configuration and explicit regime knobs, mirroring
// Engine.BargainImperfectWith. gains may be nil when the Client was dialed
// with WithGains.
func (c *Client) BargainImperfectWith(ctx context.Context, cfg SessionConfig, params ImperfectParams, gains GainProvider, obs ...RoundObserver) (*ImperfectResult, error) {
	return c.bargainImperfect(ctx, cfg, params, gains, c.cfg.identity, obs)
}

// bargainImperfect is the shared imperfect-session driver behind
// BargainImperfectWith and BargainImperfectBatch: one auto-resume loop
// over session streams opened on pooled connections, under the given
// identity.
func (c *Client) bargainImperfect(ctx context.Context, cfg SessionConfig, params ImperfectParams, gains GainProvider, identity string, obs []RoundObserver) (*ImperfectResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	params = params.WithDefaults()
	// The handshake advertises the regime and the mutually known §3.5
	// parameters, so the remote data party constructs the exact
	// estimation-based seller an in-process run would.
	hs := wire.ClientHello{
		Market: c.cfg.market,
		Mode:   wire.ModeImperfect,
		Imperfect: &wire.ImperfectHello{
			Seed:              cfg.Seed,
			Target:            cfg.TargetGain,
			ExplorationRounds: params.ExplorationRounds,
			ReplaySteps:       params.ReplaySteps,
			ClientID:          identity,
		},
	}
	// An identified client bargains under the auto-resume policy: every
	// settled round checkpoints the buyer's estimator, and a transport
	// failure retries presenting the last acknowledged round, so the
	// session continues from its checkpoints instead of starting over.
	// Without an identity a failure surfaces immediately, as before. The
	// waits between attempts follow the (configurable) capped-exponential
	// schedule. A retry reuses the pooled warm connection when it survived
	// the failure (a per-session eviction severs only the stream) and
	// dials a replacement only when the connection itself died — resume no
	// longer pays a dial and handshake unless it must.
	bo := c.cfg.backoff.withDefaults()
	attempts := 1
	if identity != "" {
		attempts = bo.Attempts
	}
	var res *ImperfectResult
	var last *core.ImperfectCheckpoint
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(bo.wait(attempt)):
			case <-ctx.Done():
				return nil, fmt.Errorf("vflmarket: bargaining abandoned: %w", context.Cause(ctx))
			}
		}
		ck := last
		if ck != nil {
			hs.Imperfect.ResumeRound = ck.Round
		} else {
			hs.Imperfect.ResumeRound = 0
		}
		err = c.withSession(ctx, gains, hs, func(ctx context.Context, tc *wire.TaskClient, codec wire.Codec, hello *wire.Hello) error {
			tc.Checkpoint = func(k *core.ImperfectCheckpoint) { last = k }
			var rerr error
			if ck != nil {
				res, rerr = tc.ResumeImperfectCodec(ctx, codec, hello, params, ck)
			} else {
				res, rerr = tc.BargainImperfectCodec(ctx, codec, hello, params)
			}
			return rerr
		}, cfg, obs)
		if err == nil {
			return res, nil
		}
		// A typed rejection is final — the server told us why, and retrying
		// replays the same refusal. Cancellation is the caller's word.
		// Everything else (transport death, busy, timeout) gets another
		// attempt.
		if errors.Is(err, wire.ErrRejected) || ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, err
}

// BargainWith plays one session with a fully custom session configuration,
// mirroring Engine.BargainWith. gains may be nil when the Client was
// dialed with WithGains.
//
// Perfect-information sessions are stateless on the server and
// deterministic for a given seed, so a session killed by a transport
// fault, a busy refusal, or a mid-session eviction is simply replayed
// from scratch on the retry policy — the result of a retried session is
// bit-identical to one that never failed. Rejections and cancellation
// surface immediately.
func (c *Client) BargainWith(ctx context.Context, cfg SessionConfig, gains GainProvider, obs ...RoundObserver) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	bo := c.cfg.backoff.withDefaults()
	var res *Result
	var err error
	for attempt := 0; attempt < bo.Attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(bo.wait(attempt)):
			case <-ctx.Done():
				return nil, fmt.Errorf("vflmarket: bargaining abandoned: %w", context.Cause(ctx))
			}
		}
		res = nil
		err = c.withSession(ctx, gains, wire.ClientHello{Market: c.cfg.market},
			func(ctx context.Context, tc *wire.TaskClient, codec wire.Codec, hello *wire.Hello) error {
				var serr error
				res, serr = tc.BargainCodec(ctx, codec, hello)
				return serr
			}, cfg, obs)
		if err == nil {
			return res, nil
		}
		if !retryableErr(err) || ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, err
}

// BargainBatch plays one perfect-information session per spec across a
// bounded worker pool, every session a stream over the client's pooled
// multiplexed connections, and returns the results in spec order. It is
// the wire mirror of Engine.BargainBatch, with the identical
// seed-derivation convention: a spec with neither a Seed nor a seeded
// Session plays on a seed derived from BatchOptions.Seed and the spec's
// index — so against a mirrored server the result slice is bit-identical
// to the in-process batch, no matter how many connections the sessions
// multiplexed over.
//
// The first session error — including ctx cancellation, checked between
// rounds of every in-flight session — abandons the rest of the batch;
// unfinished slots are left nil and the error is returned alongside the
// partial results.
func (c *Client) BargainBatch(ctx context.Context, specs []BatchSpec, opts BatchOptions) ([]*Result, error) {
	results := make([]*Result, len(specs))
	err := core.ForEach(ctx, len(specs), opts.Workers, func(ctx context.Context, i int) error {
		cfg, err := c.batchConfig(specs[i], opts, i)
		if err != nil {
			return err
		}
		res, err := c.BargainWith(ctx, cfg, c.cfg.gains, specs[i].Observer)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	return results, err
}

// BargainImperfectBatch plays one imperfect-information session per spec
// across a bounded worker pool over the pooled connections, mirroring a
// loop of Engine.BargainImperfectWith calls under BargainBatch's
// seed-derivation convention. The regime knobs come from WithImperfect
// (paper defaults otherwise). When the client was dialed with an identity,
// each spec bargains as "<identity>-<i>" so concurrent sessions keep
// distinct server-side checkpoints and the auto-resume policy covers every
// session of the batch independently.
func (c *Client) BargainImperfectBatch(ctx context.Context, specs []BatchSpec, opts BatchOptions) ([]*ImperfectResult, error) {
	var params ImperfectParams
	if c.cfg.imperfect != nil {
		params = *c.cfg.imperfect
	}
	results := make([]*ImperfectResult, len(specs))
	err := core.ForEach(ctx, len(specs), opts.Workers, func(ctx context.Context, i int) error {
		cfg, err := c.batchConfig(specs[i], opts, i)
		if err != nil {
			return err
		}
		identity := c.cfg.identity
		if identity != "" {
			identity = fmt.Sprintf("%s-%d", identity, i)
		}
		res, err := c.bargainImperfect(ctx, cfg, params, c.cfg.gains, identity, []RoundObserver{specs[i].Observer})
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	return results, err
}

// batchConfig resolves one batch spec against the dial template under the
// exact seed convention of Engine.batchJobs, so a client batch and an
// engine batch with the same specs play the same sessions.
func (c *Client) batchConfig(sp BatchSpec, opts BatchOptions, i int) (SessionConfig, error) {
	var cfg SessionConfig
	switch {
	case sp.Session != nil:
		cfg = *sp.Session
	case c.cfg.session != nil:
		cfg = *c.cfg.session
	default:
		return SessionConfig{}, fmt.Errorf("vflmarket: batch spec %d needs a session: Dial with WithSession or set BatchSpec.Session", i)
	}
	if seedIsSet(sp.Seed) {
		cfg.Seed = sp.Seed
	} else if !seedIsSet(cfg.Seed) {
		cfg.Seed = rng.DeriveSeed(opts.Seed, uint64(i))
	}
	return cfg, nil
}

// withSession opens one session stream over a pooled connection and runs
// one session body over it — the lifecycle shared by both information
// regimes. A body that returns an error abandons the stream (the server's
// end is cancelled without touching sibling sessions); a clean return
// just flushes and unregisters it.
func (c *Client) withSession(ctx context.Context, gains GainProvider, hs wire.ClientHello,
	run func(ctx context.Context, tc *wire.TaskClient, codec wire.Codec, hello *wire.Hello) error,
	cfg SessionConfig, obs []RoundObserver) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if gains == nil {
		gains = c.cfg.gains
	}
	if gains == nil {
		return fmt.Errorf("vflmarket: bargaining needs a gain provider: Dial with WithGains")
	}
	s, hello, err := c.openSession(ctx, hs)
	if err != nil {
		return wrapCtx(ctx, err)
	}
	tc := &wire.TaskClient{Session: cfg, Gains: gains, Observers: toCoreObservers(obs), Noise: c.noise}
	if err := run(ctx, tc, s, hello); err != nil {
		s.Close()
		return wrapCtx(ctx, err)
	}
	s.CloseClean()
	return nil
}

// transportErr reports failures of the pipe itself — the peer vanished,
// stalled, or reset, or the local breaker suppressed the dial. The server
// answered nothing; another attempt answers the question.
func transportErr(err error) bool {
	return wire.IsTransportError(err) || errors.Is(err, ErrCircuitOpen)
}

// retryableErr widens transportErr with the answers a live server gives
// that a later attempt can heal: saturation (busy), eviction (surfaced as
// busy mid-migration), and redirect churn while a market re-homes.
func retryableErr(err error) bool {
	return transportErr(err) || errors.Is(err, ErrServerBusy) || errors.Is(err, wire.ErrRedirected)
}

// wrapCtx prefers the context's cause when a transport error was really a
// cancellation (cancelled session receives surface as stream errors).
func wrapCtx(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return fmt.Errorf("vflmarket: bargaining abandoned: %w", context.Cause(ctx))
	}
	return err
}

func toCoreObservers(obs []RoundObserver) []core.RoundObserver {
	out := make([]core.RoundObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	return out
}
