package vflmarket

// End-to-end tests of shard failover: health probes spotting a dead
// shard, Failover re-homing its markets onto survivors from the dead
// shard's state directory, and — the acceptance scenario — an in-flight
// identified session riding the kill through its resume loop to finish
// bit-identically to an uninterrupted run.

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestClusterHealthProbes: a live fleet answers every probe; after
// StopShard the corpse probes false while the survivors stay true.
func TestClusterHealthProbes(t *testing.T) {
	cluster := startCluster(t, 3, "", "alpha", "beta")
	for id, ok := range cluster.Health(context.Background()) {
		if !ok {
			t.Fatalf("live shard %d probes unhealthy", id)
		}
	}

	const dead = 2
	if err := cluster.StopShard(dead); err != nil {
		t.Fatal(err)
	}
	h := cluster.Health(context.Background())
	if len(h) != 3 {
		t.Fatalf("health covers %d shards, want 3", len(h))
	}
	for id, ok := range h {
		if id == dead && ok {
			t.Fatalf("stopped shard %d still probes healthy", id)
		}
		if id != dead && !ok {
			t.Fatalf("survivor %d probes unhealthy", id)
		}
	}
	// StopShard is idempotent.
	if err := cluster.StopShard(dead); err != nil {
		t.Fatalf("second StopShard: %v", err)
	}
}

// TestClusterFailoverBitIdentical is the failover drill: an identified
// imperfect buyer bargains against the fabric; mid-exploration its
// market's owner is killed abruptly (listener closed, every connection
// severed, no eviction choreography) and Failover re-homes the market
// onto a survivor from the dead shard's state directory. The client's
// resume loop rides the kill — dead address, redirects to a corpse,
// busy during the move — and finishes bit-identically to an
// uninterrupted run, with zero failed sessions on any shard.
func TestClusterFailoverBitIdentical(t *testing.T) {
	engine := clusterEngine(t)
	const seed = 59
	params := imperfectTestParams
	cfg := engine.SessionImperfect()
	cfg.Seed = seed
	want, err := engine.BargainImperfectWith(context.Background(), cfg, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rounds) < 4 {
		t.Fatalf("reference session too short to cut: %d rounds", len(want.Rounds))
	}
	cut := want.Rounds[len(want.Rounds)/2].Round

	cluster := startCluster(t, 3, stateTestDir(t), "titanic")
	dead := cluster.Markets()["titanic"]

	// The kill fires from the client's round observer the first time the
	// session reaches the cut round — with the session live on the owner.
	type failoverOut struct {
		moves []Transfer
		err   error
	}
	failedOver := make(chan failoverOut, 1)
	var once sync.Once
	trigger := func() {
		once.Do(func() {
			go func() {
				if err := cluster.StopShard(dead); err != nil {
					failedOver <- failoverOut{err: err}
					return
				}
				moves, err := cluster.Failover(context.Background(), dead)
				failedOver <- failoverOut{moves: moves, err: err}
			}()
		})
	}

	client, err := cluster.Dial(context.Background(), "titanic",
		WithIdentity("buyer-9"),
		WithSession(engine.SessionImperfect()),
		WithGains(engine.CatalogGains()),
		WithImperfect(params),
		WithSessionTimeout(2*time.Second),
		WithRetryPolicy(RetryPolicy{Attempts: 20, Base: 25 * time.Millisecond, Max: 300 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	obs := ObserverFuncs{Round: func(rec RoundRecord) {
		if rec.Round == cut {
			trigger()
		}
	}}
	got, err := client.BargainImperfect(context.Background(),
		BargainOptions{Seed: seed, Observers: []RoundObserver{obs}})
	if err != nil {
		t.Fatalf("session across shard failover failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("failover session diverges from uninterrupted run:\nfailover: %+v\nwant:     %+v", got, want)
	}

	out := <-failedOver
	if out.err != nil {
		t.Fatalf("failover: %v", out.err)
	}
	if len(out.moves) != 1 {
		t.Fatalf("failover executed %d transfers, want 1: %+v", len(out.moves), out.moves)
	}
	mv := out.moves[0]
	if mv.Market != "titanic" || mv.From != dead || mv.To == dead || mv.Reason != "failover" {
		t.Fatalf("transfer %+v, want titanic off shard %d with reason %q", mv, dead, "failover")
	}
	if owner := cluster.Markets()["titanic"]; owner != mv.To {
		t.Fatalf("registry owner %d, want new home %d", owner, mv.To)
	}

	// The fleet saw a death and a recovery, not failures.
	for id := 0; id < 3; id++ {
		srv, err := cluster.Shard(id)
		if err != nil {
			t.Fatal(err)
		}
		if m := srv.Metrics(); m.Failed != 0 {
			t.Fatalf("shard %d failed %d sessions, want 0", id, m.Failed)
		}
	}
	dstSrv, err := cluster.Shard(mv.To)
	if err != nil {
		t.Fatal(err)
	}
	if mm := dstSrv.MarketMetrics()["titanic"]; mm.ResumedSessions < 1 {
		t.Fatalf("new owner granted %d resumes, want >= 1", mm.ResumedSessions)
	}
	for id, ok := range cluster.Health(context.Background()) {
		if want := id != dead; ok != want {
			t.Fatalf("post-failover health[%d] = %v, want %v", id, ok, want)
		}
	}

	// A fresh dial finds the market at its new home.
	probe, err := cluster.Dial(context.Background(), "titanic")
	if err != nil {
		t.Fatalf("dial after failover: %v", err)
	}
	defer probe.Close()
	if gotAddr, wantAddr := probe.Addr(), cluster.Addrs()[mv.To]; gotAddr != wantAddr {
		t.Fatalf("post-failover dial landed on %s, want %s", gotAddr, wantAddr)
	}
}
